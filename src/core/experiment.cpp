#include "h2priv/core/experiment.hpp"

#include <algorithm>

#include <fstream>

#include <cmath>

#include <filesystem>

#include <memory>

#include "h2priv/analysis/trace_export.hpp"
#include "h2priv/capture/corpus.hpp"
#include "h2priv/capture/trace_writer.hpp"
#include "h2priv/core/parallel_runner.hpp"
#include "h2priv/obs/export.hpp"
#include "h2priv/obs/metrics.hpp"
#include "h2priv/net/link.hpp"
#include "h2priv/net/middlebox.hpp"
#include "h2priv/sim/simulator.hpp"
#include "h2priv/tcp/connection.hpp"
#include "h2priv/tls/session.hpp"

namespace h2priv::core {

std::string html_label() { return "results-html"; }

std::string party_label(int party) { return "party-" + std::to_string(party + 1); }

analysis::SizeCatalog isidewith_catalog() {
  analysis::SizeCatalog catalog;
  catalog.add(html_label(), web::kResultsHtmlSize);
  for (int p = 0; p < web::kPartyCount; ++p) {
    catalog.add(party_label(p), web::kEmblemSizes[static_cast<std::size_t>(p)]);
  }
  return catalog;
}

RunResult run_once(const RunConfig& config) {
  obs::Registry& reg = obs::current();
  if (config.obs_trace_capacity > 0) {
    reg.trace().set_capacity(config.obs_trace_capacity);
  }
  sim::Simulator sim;
  sim::Rng root(config.seed);
  sim::Rng plan_rng = root.fork();
  sim::Rng link_rng = root.fork();
  sim::Rng server_rng = root.fork();
  sim::Rng browser_rng = root.fork();
  sim::Rng adversary_rng = root.fork();

  const web::IsideWithSite site = web::build_isidewith_site(config.pad_sensitive_objects);
  web::IsideWithPlan plan = web::build_isidewith_plan(site, plan_rng, config.tuning);

  // --- transport endpoints --------------------------------------------------
  tcp::TcpConfig client_tcp_cfg;
  client_tcp_cfg.local_port = 49'152;
  client_tcp_cfg.remote_port = 443;
  tcp::TcpConfig server_tcp_cfg;
  server_tcp_cfg.local_port = 443;
  server_tcp_cfg.remote_port = 49'152;

  net::Middlebox middlebox(sim);
  std::uint64_t next_packet_id = 0;

  // Links: client -> middlebox -> server and back. The middlebox sits at the
  // gateway, so the client hop is short and the server hop is the WAN.
  net::LinkConfig client_hop;
  client_hop.propagation = config.path.client_hop_delay;
  client_hop.rate = config.path.link_rate;
  client_hop.jitter_sigma = config.path.jitter_sigma;
  client_hop.loss_probability = config.path.background_loss;
  net::LinkConfig server_hop = client_hop;
  server_hop.propagation = config.path.server_hop_delay;
  // The gateway's egress toward the client is the shared, contended hop.
  net::LinkConfig egress_hop = client_hop;
  egress_hop.burst_capacity_packets = config.path.egress_burst_capacity;
  egress_hop.burst_window = config.path.egress_burst_window;
  egress_hop.burst_excess_loss = config.path.egress_burst_loss;

  tcp::Connection client_tcp(sim, client_tcp_cfg, nullptr);  // sink wired below
  tcp::Connection server_tcp(sim, server_tcp_cfg, nullptr);

  net::Link link_c2m(sim, client_hop, link_rng.fork(), [&](net::Packet&& p) {
    middlebox.process(net::Direction::kClientToServer, std::move(p));
  });
  net::Link link_m2s(sim, server_hop, link_rng.fork(), [&](net::Packet&& p) {
    server_tcp.on_wire(p.segment);
  });
  net::Link link_s2m(sim, server_hop, link_rng.fork(), [&](net::Packet&& p) {
    middlebox.process(net::Direction::kServerToClient, std::move(p));
  });
  net::Link link_m2c(sim, egress_hop, link_rng.fork(), [&](net::Packet&& p) {
    client_tcp.on_wire(p.segment);
  });
  middlebox.set_output(net::Direction::kClientToServer,
                       [&](net::Packet&& p) { link_m2s.send(std::move(p)); });
  middlebox.set_output(net::Direction::kServerToClient,
                       [&](net::Packet&& p) { link_m2c.send(std::move(p)); });

  // (segment sinks need the links, which needed the middlebox — wire now)
  // NOTE: tcp::Connection exposes the sink only at construction, so the
  // connections are constructed with null sinks above and rewired here via
  // set_segment_out().
  client_tcp.set_segment_out([&](util::SharedBytes wire) {
    link_c2m.send(net::Packet{++next_packet_id, net::Direction::kClientToServer,
                              std::move(wire)});
  });
  server_tcp.set_segment_out([&](util::SharedBytes wire) {
    link_s2m.send(net::Packet{++next_packet_id, net::Direction::kServerToClient,
                              std::move(wire)});
  });

  // --- TLS + application endpoints ------------------------------------------
  const std::uint64_t session_secret = config.seed * 0x9e3779b97f4a7c15ull + 17;
  tls::Session client_tls(tls::Role::kClient, session_secret, client_tcp);
  tls::Session server_tls(tls::Role::kServer, session_secret, server_tcp);

  // Record quantization (src/defense): the server seals bucket-padded
  // application records; the client must strip the authenticated filler.
  const defense::DefenseConfig& defense_cfg = config.server.defense;
  if (defense_cfg.record_bucket > 0) {
    server_tls.set_send_record_bucket(defense_cfg.record_bucket);
    client_tls.set_recv_record_unpad(true);
  }

  auto truth = std::make_shared<analysis::GroundTruth>();
  server::ServerConfig server_cfg = config.server;
  if (config.push_emblems) {
    std::vector<std::string> emblem_paths;
    for (const web::ObjectId id : site.emblems) {
      emblem_paths.push_back(site.site.object(id).path);
    }
    server_cfg.push_map[site.site.object(site.results_html).path] =
        std::move(emblem_paths);
  }
  server::H2Server server(sim, site.site, server_cfg, server_tls, server_rng.fork(),
                          truth.get());
  client::Browser browser(sim, site.site, plan.plan, config.browser, client_tls,
                          browser_rng.fork());

  if (config.packet_tap) {
    middlebox.add_tap([&config](net::Direction d, const net::Packet& p, util::TimePoint) {
      config.packet_tap(d, p);
    });
  }

  // --- adversary --------------------------------------------------------------
  TrafficMonitor monitor(middlebox);
  std::unique_ptr<capture::TraceWriter> trace_writer;
  if (config.capture.enabled()) {
    std::string trace_path = config.capture.path;
    if (trace_path.empty()) {
      // Corpus mode: concurrent workers may race here; create_directories
      // is idempotent, so whoever wins, everyone proceeds.
      std::filesystem::create_directories(config.capture.corpus_dir);
      trace_path = config.capture.corpus_dir + "/" + capture::trace_filename(config.seed);
    }
    capture::TraceMeta meta;
    meta.seed = config.seed;
    meta.scenario = config.capture.scenario;
    meta.attack_enabled = config.attack_enabled;
    meta.pad_sensitive_objects = config.pad_sensitive_objects;
    meta.push_emblems = config.push_emblems;
    if (config.manual_spacing) meta.manual_spacing_ns = config.manual_spacing->ns;
    if (config.manual_bandwidth) {
      meta.manual_bandwidth_bps = config.manual_bandwidth->bits_per_sec;
    }
    meta.deadline_ns = config.deadline.ns;
    meta.party_order = plan.party_order;
    meta.defense = defense_cfg;
    trace_writer = std::make_unique<capture::TraceWriter>(trace_path, std::move(meta));
    monitor.on_packet_observed = [&](const analysis::PacketObservation& obs) {
      trace_writer->add_packet(obs);
    };
  }
  NetworkController controller(sim, middlebox, adversary_rng.fork());
  Attack attack(sim, monitor, controller, config.attack);
  if (config.attack_enabled) attack.arm();
  if (config.manual_spacing) controller.set_request_spacing(*config.manual_spacing);
  if (config.manual_bandwidth) controller.set_bandwidth(*config.manual_bandwidth);

  // --- go ---------------------------------------------------------------------
  server_tcp.listen();
  client_tcp.connect();
  const std::size_t events_executed =
      sim.run_until(util::TimePoint{} + config.deadline);

  // --- score ------------------------------------------------------------------
  RunResult result;
  result.events_executed = events_executed;
  result.page_complete = browser.stats().page_complete;
  result.broken = browser.stats().broken;
  result.page_load_seconds =
      result.page_complete ? browser.stats().page_complete_time.seconds() : 0.0;
  result.browser_rerequests = browser.stats().rerequests_sent;
  result.reset_episodes = browser.stats().reset_episodes;
  result.rst_streams_sent = browser.stats().rst_streams_sent;
  result.tcp_retransmits =
      client_tcp.stats().total_retransmits() + server_tcp.stats().total_retransmits();
  result.duplicate_server_responses = server.stats().duplicate_requests;
  result.truth = truth;
  result.monitor_packets = monitor.packets_seen();
  result.egress_burst_drops = link_m2c.stats().burst_dropped;
  result.monitor_gets = monitor.get_count();
  result.true_party_order = plan.party_order;

  ObjectPredictor predictor(monitor, isidewith_catalog());
  const util::TimePoint horizon =
      config.attack_enabled && attack.timeline().drops_ended
          ? *attack.timeline().drops_ended
          : util::TimePoint{};

  const auto score_object = [&](web::ObjectId id, const std::string& label) {
    ObjectOutcome o;
    o.object_id = id;
    o.label = label;
    o.true_size = site.site.object(id).size;
    o.primary_dom = truth->object_dom(id);
    if (o.primary_dom.has_value()) {
      // The paper's per-object observable: DoM == 0 means fully serialized.
      reg.sample(obs::Hist::kH2ObjectDomMilli,
                 static_cast<std::uint64_t>(std::llround(*o.primary_dom * 1000.0)));
    }
    o.serialized_primary = o.primary_dom.has_value() && *o.primary_dom == 0.0;
    o.any_serialized_copy = truth->any_serialized_instance(id);
    o.identified = predictor.find(label, horizon).has_value();
    o.attack_success = o.any_serialized_copy && o.identified;
    return o;
  };

  result.html = score_object(site.results_html, html_label());

  for (int pos = 0; pos < web::kPartyCount; ++pos) {
    const int party = plan.party_order[static_cast<std::size_t>(pos)];
    result.emblems_by_position[static_cast<std::size_t>(pos)] =
        score_object(site.emblems[static_cast<std::size_t>(party)], party_label(party));
  }

  result.attack_horizon_seconds = horizon.seconds();
  result.debug_bursts = predictor.bursts_after(horizon);

  // Sequence recovery: last-occurrence-per-party ordering (noise-robust).
  std::vector<std::string> party_labels;
  for (int p = 0; p < web::kPartyCount; ++p) party_labels.push_back(party_label(p));
  for (const Identification& id : predictor.predict_sequence(party_labels, horizon)) {
    result.predicted_sequence.push_back(id.label);
  }
  for (int pos = 0; pos < web::kPartyCount; ++pos) {
    const int party = plan.party_order[static_cast<std::size_t>(pos)];
    const bool position_ok =
        pos < static_cast<int>(result.predicted_sequence.size()) &&
        result.predicted_sequence[static_cast<std::size_t>(pos)] == party_label(party);
    auto& outcome = result.emblems_by_position[static_cast<std::size_t>(pos)];
    outcome.attack_success = outcome.any_serialized_copy && position_ok;
    result.sequence_positions_correct += position_ok ? 1 : 0;
  }
  if (trace_writer) {
    for (const auto dir :
         {net::Direction::kClientToServer, net::Direction::kServerToClient}) {
      for (const analysis::RecordObservation& rec : monitor.records(dir)) {
        trace_writer->add_record(rec);
      }
    }
    trace_writer->meta().attack_horizon_ns = horizon.ns;
    trace_writer->set_ground_truth(*truth);

    const auto to_verdict = [](const ObjectOutcome& o) {
      capture::ObjectVerdict v;
      v.label = o.label;
      v.true_size = o.true_size;
      v.has_dom = o.primary_dom.has_value();
      if (o.primary_dom) v.primary_dom = *o.primary_dom;
      v.serialized_primary = o.serialized_primary;
      v.any_serialized_copy = o.any_serialized_copy;
      v.identified = o.identified;
      v.attack_success = o.attack_success;
      return v;
    };
    capture::TraceSummary summary;
    summary.monitor_packets = result.monitor_packets;
    summary.monitor_gets = result.monitor_gets;
    summary.html = to_verdict(result.html);
    for (std::size_t pos = 0; pos < static_cast<std::size_t>(web::kPartyCount); ++pos) {
      summary.emblems_by_position[pos] = to_verdict(result.emblems_by_position[pos]);
    }
    summary.predicted_sequence = result.predicted_sequence;
    summary.sequence_positions_correct = result.sequence_positions_correct;
    trace_writer->set_summary(summary);
    trace_writer->finish();
  }

  if (config.observations_out != nullptr) {
    RunObservations& out = *config.observations_out;
    out.packets = monitor.packets();
    out.records_c2s = monitor.records(net::Direction::kClientToServer);
    out.records_s2c = monitor.records(net::Direction::kServerToClient);
    out.attack_horizon_ns = horizon.ns;
  }

  reg.add(obs::Counter::kCoreRuns);
  if (result.page_complete) reg.add(obs::Counter::kCorePagesComplete);
  if (result.broken) reg.add(obs::Counter::kCoreBrokenRuns);
  reg.add(obs::Counter::kCoreBrowserRerequests, result.browser_rerequests);
  reg.add(obs::Counter::kCoreResetEpisodes, result.reset_episodes);
  reg.trace().push(sim.now().ns, obs::TraceLayer::kCore, obs::TraceEvent::kRunScored,
                   config.seed, events_executed);

  if (!config.trace_export_prefix.empty()) {
    if (reg.trace().enabled()) {
      std::ofstream obs_csv(config.trace_export_prefix + "_obs_trace.csv");
      obs::write_trace_csv(obs_csv, reg.trace());
      std::ofstream obs_json(config.trace_export_prefix + "_obs_trace.json");
      obs::write_trace_json(obs_json, reg.trace());
    }
    std::ofstream packets(config.trace_export_prefix + "_packets.csv");
    analysis::write_packets_csv(packets, monitor.packets());
    std::ofstream records(config.trace_export_prefix + "_records.csv");
    const auto& c2s = monitor.records(net::Direction::kClientToServer);
    const auto& s2c = monitor.records(net::Direction::kServerToClient);
    std::vector<analysis::RecordObservation> all_records;
    all_records.reserve(c2s.size() + s2c.size());
    all_records.insert(all_records.end(), c2s.begin(), c2s.end());
    all_records.insert(all_records.end(), s2c.begin(), s2c.end());
    analysis::write_records_csv(records, all_records);
    std::ofstream gt(config.trace_export_prefix + "_ground_truth.csv");
    analysis::write_ground_truth_csv(gt, *truth);
  }
  return result;
}

std::vector<RunResult> run_many(const RunConfig& config, int n) {
  return run_many(config, n, Parallelism::from_env());
}

}  // namespace h2priv::core
