#include "h2priv/core/partial_matcher.hpp"

#include <algorithm>

namespace h2priv::core {

void PartialMatcher::search(std::size_t remaining, std::size_t tolerance,
                            std::size_t first,
                            int depth_left, std::vector<std::size_t>& chosen,
                            std::vector<PartialMatch>& out) const {
  if (remaining <= tolerance && !chosen.empty()) {
    PartialMatch m;
    for (const std::size_t idx : chosen) {
      m.labels.push_back(catalog_.entries()[idx].label);
      m.matched_size += catalog_.entries()[idx].body_size;
    }
    out.push_back(std::move(m));
    // Do not also extend this subset: supersets would overshoot anyway once
    // remaining <= tolerance and entries are >> tolerance, but guard below.
  }
  if (depth_left == 0) return;
  const auto& entries = catalog_.entries();
  for (std::size_t i = first; i < entries.size(); ++i) {
    const std::size_t cost = entries[i].body_size + per_object_overhead_;
    if (cost > remaining + tolerance) continue;
    chosen.push_back(i);
    search(remaining > cost ? remaining - cost : 0, tolerance, i + 1, depth_left - 1,
           chosen,
           out);
    chosen.pop_back();
  }
}

std::vector<PartialMatch> PartialMatcher::explanations(std::size_t burst_estimate,
                                                       std::size_t tolerance,
                                                       int max_objects) const {
  std::vector<PartialMatch> out;
  std::vector<std::size_t> chosen;
  search(burst_estimate, tolerance, 0, max_objects, chosen, out);
  // Deduplicate label sets (sorted) — identical sums reached differently.
  for (PartialMatch& m : out) std::sort(m.labels.begin(), m.labels.end());
  std::sort(out.begin(), out.end(), [](const PartialMatch& a, const PartialMatch& b) {
    return a.labels < b.labels;
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const PartialMatch& a, const PartialMatch& b) {
                          return a.labels == b.labels;
                        }),
            out.end());
  return out;
}

std::optional<PartialMatch> PartialMatcher::unique_explanation(std::size_t burst_estimate,
                                                               std::size_t tolerance,
                                                               int max_objects) const {
  const auto all = explanations(burst_estimate, tolerance, max_objects);
  if (all.size() != 1) return std::nullopt;
  return all.front();
}

std::vector<std::string> PartialMatcher::certain_members(std::size_t burst_estimate,
                                                         std::size_t tolerance,
                                                         int max_objects) const {
  const auto all = explanations(burst_estimate, tolerance, max_objects);
  if (all.empty()) return {};
  std::vector<std::string> certain = all.front().labels;
  for (std::size_t i = 1; i < all.size(); ++i) {
    std::vector<std::string> kept;
    for (const std::string& label : certain) {
      if (std::find(all[i].labels.begin(), all[i].labels.end(), label) !=
          all[i].labels.end()) {
        kept.push_back(label);
      }
    }
    certain = std::move(kept);
    if (certain.empty()) break;
  }
  return certain;
}

}  // namespace h2priv::core
