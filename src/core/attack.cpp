#include "h2priv/core/attack.hpp"

namespace h2priv::core {

Attack::Attack(sim::Simulator& sim, TrafficMonitor& monitor,
               NetworkController& controller,
               AttackConfig config)
    : sim_(sim), monitor_(monitor), controller_(controller), config_(config) {}

void Attack::arm() {
  timeline_.armed = sim_.now();
  if (config_.enable_spacing) {
    controller_.set_request_spacing(config_.phase1_spacing);
  }
  monitor_.on_get_request = [this](int index,
                                   util::TimePoint when) { on_get(index, when); };
  // "We continue the packet drops ... until the client sends stream reset":
  // the RST flurry is the cue to lift the drops and move to phase 3.
  monitor_.on_reset_detected = [this](util::TimePoint) { enter_phase3(); };
}

void Attack::enter_phase3() {
  if (!timeline_.target_get_seen || timeline_.drops_ended) return;
  timeline_.drops_ended = sim_.now();
  controller_.stop_drops();
  if (config_.enable_spacing) {
    controller_.set_request_spacing(config_.phase3_spacing);
  }
}

void Attack::on_get(int index, util::TimePoint when) {
  if (index != config_.target_get_index || timeline_.target_get_seen) return;
  timeline_.target_get_seen = when;

  if (config_.enable_bandwidth_limit) {
    controller_.set_bandwidth(config_.phase2_bandwidth);
  }
  if (config_.enable_drops) {
    controller_.start_drops(config_.drop_fraction, config_.drop_duration);
  }
  // Fallback: if no reset is observed, lift the drops after the fixed window
  // (the paper's 6-second timer) and move to phase 3 anyway.
  sim_.schedule(config_.drop_duration, [this] { enter_phase3(); });
}

}  // namespace h2priv::core
