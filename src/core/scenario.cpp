#include "h2priv/core/scenario.hpp"

#include <stdexcept>

namespace h2priv::core {

namespace {

void apply_baseline(RunConfig&) {
  // Stock page load, adversary passive.
}

void apply_fig2(RunConfig& cfg) {
  // Section IV request-spacing study: a fixed 50 ms middlebox hold.
  cfg.manual_spacing = util::milliseconds(50);
}

void apply_table2(RunConfig& cfg) {
  // Full Section V attack pipeline armed.
  cfg.attack_enabled = true;
}

constexpr ScenarioSpec kScenarios[] = {
    {"baseline", "stock page load, adversary passive", apply_baseline},
    {"fig2", "50 ms manual request spacing (Section IV)", apply_fig2},
    {"table2", "full attack pipeline armed (Section V)", apply_table2},
};

}  // namespace

std::span<const ScenarioSpec> scenarios() noexcept { return kScenarios; }

const ScenarioSpec* find_scenario(std::string_view name) noexcept {
  if (name.empty()) name = "baseline";
  for (const ScenarioSpec& s : kScenarios) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

void apply_scenario(RunConfig& config, std::string_view name) {
  const ScenarioSpec* spec = find_scenario(name);
  if (spec == nullptr) {
    throw std::runtime_error("unknown scenario: " + std::string(name) +
                             " (expected " + scenario_names() + ")");
  }
  spec->apply(config);
}

RunConfig scenario_config(std::string_view name) {
  RunConfig cfg;
  apply_scenario(cfg, name);
  return cfg;
}

std::string scenario_names() {
  std::string out;
  for (const ScenarioSpec& s : kScenarios) {
    if (!out.empty()) out += " | ";
    out += s.name;
  }
  return out;
}

}  // namespace h2priv::core
