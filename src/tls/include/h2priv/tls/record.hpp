// TLS record layer model.
//
// Real record framing (5-byte header: type, version, length) with a toy
// stream cipher + MAC standing in for AEAD. The point is not cryptographic
// strength — it is the *discipline*: payload bytes on the wire are
// scrambled, so nothing in this codebase can accidentally "cheat" by reading
// plaintext off a packet. An on-path observer sees exactly what tshark's
// `ssl.record.content_type` filter sees: type and length.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "h2priv/util/buffer_pool.hpp"
#include "h2priv/util/bytes.hpp"

namespace h2priv::tls {

enum class ContentType : std::uint8_t {
  kChangeCipherSpec = 20,
  kAlert = 21,
  kHandshake = 22,
  kApplicationData = 23,
};

inline constexpr std::size_t kHeaderBytes = 5;
inline constexpr std::size_t kMaxPlaintext = 16 * 1024;  // 2^14 (RFC 8446)
inline constexpr std::size_t kAeadOverhead = 16;         // tag bytes per record
inline constexpr std::uint16_t kVersionTls12 = 0x0303;

class TlsError : public std::runtime_error {
 public:
  explicit TlsError(const std::string& what) : std::runtime_error(what) {}
};

/// Seals plaintext into records / opens records back into plaintext. One
/// SealContext per (session, direction); record sequence numbers key the
/// keystream so replayed or reordered ciphertext fails authentication.
class SealContext {
 public:
  SealContext(std::uint64_t session_secret, std::uint8_t direction_domain) noexcept
      : secret_(session_secret), domain_(direction_domain) {}

  /// Chunks plaintext into >= 1 records and returns their concatenated wire
  /// bytes. Empty plaintext produces a single empty record.
  [[nodiscard]] util::Bytes seal(ContentType type, util::BytesView plaintext);

  /// Same wire bytes as seal(), emitted into a pooled buffer — the hot-path
  /// variant used by tls::Session (the chunk recycles once the bytes are
  /// appended to the TCP send buffer).
  [[nodiscard]] util::SharedBytes seal_shared(ContentType type,
                                              util::BytesView plaintext);

  [[nodiscard]] std::uint64_t records_sealed() const noexcept { return seq_; }

  /// Wire overhead added when sealing `n` plaintext bytes in maximal records.
  [[nodiscard]] static std::size_t sealed_size(std::size_t plaintext_len) noexcept;

  /// Record quantization (defense layer): application-data records are
  /// padded to a multiple of `bucket` plaintext bytes before sealing, TLS
  /// 1.3 style — content, then a 0x17 marker, then zero filler — so the
  /// lengths in the 5-byte headers stop tracking object boundaries. The
  /// peer's OpenContext must have set_unpad(true). 0 = off (the default;
  /// wire bytes stay bit-identical to the undefended path). Handshake and
  /// alert records are never padded.
  void set_pad_bucket(std::size_t bucket) noexcept {
    pad_bucket_ = std::min(bucket, kMaxPlaintext);
  }
  [[nodiscard]] std::size_t pad_bucket() const noexcept { return pad_bucket_; }

 private:
  void seal_into(util::ByteWriter& w, ContentType type, util::BytesView plaintext);

  std::uint64_t secret_;
  std::uint8_t domain_;
  std::uint64_t seq_ = 0;
  std::size_t pad_bucket_ = 0;
};

class OpenContext {
 public:
  OpenContext(std::uint64_t session_secret, std::uint8_t direction_domain) noexcept
      : secret_(session_secret), domain_(direction_domain) {}

  struct Record {
    ContentType type;
    util::Bytes plaintext;
  };

  /// Opens exactly one record from the front of `wire`; advances `consumed`.
  /// Throws TlsError on authentication failure or truncation.
  [[nodiscard]] Record open_one(util::BytesView wire, std::size_t& consumed);

  /// Expect quantized application-data records (peer seals with a pad
  /// bucket): strip the zero filler and 0x17 content marker after
  /// authentication. A quantized record with no marker is hostile input and
  /// throws TlsError.
  void set_unpad(bool unpad) noexcept { unpad_ = unpad; }

 private:
  std::uint64_t secret_;
  std::uint8_t domain_;
  std::uint64_t seq_ = 0;
  bool unpad_ = false;
};

/// Incremental record-boundary scanner over a (possibly partial) byte
/// stream. Used both by the receiving endpoint (to know when a full record
/// has arrived) and by the adversary's monitor (which can read only the
/// 5-byte headers). Stateless: give it a buffer, it tells you about the
/// complete records at the front.
struct RecordHeader {
  ContentType type;
  std::uint16_t ciphertext_len;  // record body length on the wire
};

/// Parses the header at the front of `buf`. Returns false if fewer than 5
/// bytes are available. Throws TlsError on an invalid content type.
[[nodiscard]] bool parse_header(util::BytesView buf, RecordHeader& out);

}  // namespace h2priv::tls
