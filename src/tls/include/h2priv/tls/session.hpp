// TLS session: drives a simulated handshake over a tcp::Connection, then
// carries opaque application records in both directions.
//
// The handshake exchanges fixed-size flights of ContentType::kHandshake so
// that an on-path monitor sees a realistic preamble to skip (as tshark does
// before `ssl.record.content_type==23` traffic starts).
#pragma once

#include <cstdint>
#include <functional>

#include "h2priv/tcp/connection.hpp"
#include "h2priv/tls/record.hpp"
#include "h2priv/util/bytes.hpp"

namespace h2priv::tls {

enum class Role : std::uint8_t { kClient, kServer };

/// Handshake flight sizes (bytes of handshake plaintext, patterned content).
inline constexpr std::size_t kClientHelloLen = 512;
inline constexpr std::size_t kServerFlightLen = 3600;  // SH + cert + done
inline constexpr std::size_t kClientFinishedLen = 130;
inline constexpr std::size_t kServerFinishedLen = 80;

/// Byte range the sealed write occupies in the underlying TCP stream
/// (half-open). This is the hook ground-truth annotation hangs off of.
struct WireRange {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  [[nodiscard]] std::uint64_t size() const noexcept { return end - begin; }
};

class Session {
 public:
  /// Takes over the connection's on_data/on_established/on_writable/on_closed
  /// hooks; interact with those events through the Session from now on.
  Session(Role role, std::uint64_t session_secret, tcp::Connection& transport);

  /// Seals and enqueues application bytes. Returns the TCP stream range the
  /// sealed records occupy. Throws std::logic_error before the handshake
  /// completes.
  WireRange send_app(util::BytesView plaintext);

  /// TCP send-buffer room left for *plaintext*, conservatively accounting
  /// for record overhead.
  [[nodiscard]] std::int64_t app_send_capacity() const noexcept;

  /// Defense: quantize outgoing application-data records to `bucket`
  /// plaintext bytes before sealing (0 = off). The peer session must have
  /// set_recv_record_unpad(true). Configure before application traffic;
  /// handshake flights are never padded either way.
  void set_send_record_bucket(std::size_t bucket) noexcept {
    seal_.set_pad_bucket(bucket);
  }
  /// Defense: expect quantized application records from the peer and strip
  /// their authenticated filler before delivery.
  void set_recv_record_unpad(bool unpad) noexcept { open_.set_unpad(unpad); }

  [[nodiscard]] bool established() const noexcept { return established_; }
  [[nodiscard]] std::uint64_t app_bytes_sent() const noexcept { return app_bytes_sent_; }
  [[nodiscard]] std::uint64_t app_bytes_received() const noexcept {
    return app_bytes_received_;
  }
  [[nodiscard]] tcp::Connection& transport() noexcept { return tcp_; }

  std::function<void()> on_established;                ///< handshake done
  std::function<void(util::BytesView)> on_app_data;    ///< decrypted app bytes
  std::function<void()> on_writable;                   ///< passthrough from TCP
  std::function<void(tcp::CloseReason)> on_closed;     ///< passthrough from TCP

 private:
  enum class HandshakeState : std::uint8_t {
    kWaitTransport,
    kClientAwaitServerFlight,   // client sent CH
    kServerAwaitClientHello,
    kServerAwaitClientFinished, // server sent flight
    kClientAwaitServerFinished, // client sent finished
    kEstablished,
  };

  void on_transport_established();
  void on_transport_data(util::BytesView bytes);
  void send_handshake_flight(std::size_t len);
  void handle_handshake_bytes(util::BytesView bytes);
  void become_established();

  Role role_;
  tcp::Connection& tcp_;
  SealContext seal_;
  OpenContext open_;
  HandshakeState hs_state_ = HandshakeState::kWaitTransport;
  std::size_t hs_bytes_pending_ = 0;  // handshake bytes still expected
  util::Bytes rx_buf_;                // undecrypted partial records
  bool established_ = false;
  std::uint64_t app_bytes_sent_ = 0;
  std::uint64_t app_bytes_received_ = 0;
};

}  // namespace h2priv::tls
