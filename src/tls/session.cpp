#include "h2priv/tls/session.hpp"

#include <stdexcept>

namespace h2priv::tls {

namespace {
// Direction domains for the keystream: client-to-server = 0, reverse = 1.
constexpr std::uint8_t kC2S = 0;
constexpr std::uint8_t kS2C = 1;
}  // namespace

Session::Session(Role role, std::uint64_t session_secret, tcp::Connection& transport)
    : role_(role),
      tcp_(transport),
      seal_(session_secret, role == Role::kClient ? kC2S : kS2C),
      open_(session_secret, role == Role::kClient ? kS2C : kC2S) {
  tcp_.on_established = [this] { on_transport_established(); };
  tcp_.on_data = [this](util::BytesView bytes) { on_transport_data(bytes); };
  tcp_.on_writable = [this] {
    if (on_writable) on_writable();
  };
  tcp_.on_closed = [this](tcp::CloseReason reason) {
    if (on_closed) on_closed(reason);
  };
  hs_state_ = HandshakeState::kWaitTransport;
}

void Session::on_transport_established() {
  if (role_ == Role::kClient) {
    send_handshake_flight(kClientHelloLen);
    hs_state_ = HandshakeState::kClientAwaitServerFlight;
    hs_bytes_pending_ = kServerFlightLen;
  } else {
    hs_state_ = HandshakeState::kServerAwaitClientHello;
    hs_bytes_pending_ = kClientHelloLen;
  }
}

void Session::send_handshake_flight(std::size_t len) {
  const util::Bytes flight = util::patterned_bytes(len, 0x48534b00u);  // 'HSK'
  tcp_.send(seal_.seal_shared(ContentType::kHandshake, flight));
}

void Session::on_transport_data(util::BytesView bytes) {
  rx_buf_.insert(rx_buf_.end(), bytes.begin(), bytes.end());
  std::size_t pos = 0;
  for (;;) {
    RecordHeader hdr{};
    const util::BytesView window(rx_buf_.data() + pos, rx_buf_.size() - pos);
    if (!parse_header(window, hdr)) break;
    if (window.size() < kHeaderBytes + hdr.ciphertext_len) break;
    std::size_t consumed = 0;
    OpenContext::Record rec = open_.open_one(window, consumed);
    pos += consumed;
    switch (rec.type) {
      case ContentType::kHandshake:
        handle_handshake_bytes(rec.plaintext);
        break;
      case ContentType::kApplicationData:
        app_bytes_received_ += rec.plaintext.size();
        if (on_app_data) on_app_data(rec.plaintext);
        break;
      default:
        break;  // alerts / CCS are decorative in this model
    }
  }
  rx_buf_.erase(rx_buf_.begin(), rx_buf_.begin() + static_cast<std::ptrdiff_t>(pos));
}

void Session::handle_handshake_bytes(util::BytesView bytes) {
  std::size_t n = bytes.size();
  while (n > 0 && hs_state_ != HandshakeState::kEstablished) {
    const std::size_t used = std::min(n, hs_bytes_pending_);
    hs_bytes_pending_ -= used;
    n -= used;
    if (hs_bytes_pending_ != 0) return;
    switch (hs_state_) {
      case HandshakeState::kServerAwaitClientHello:
        send_handshake_flight(kServerFlightLen);
        hs_state_ = HandshakeState::kServerAwaitClientFinished;
        hs_bytes_pending_ = kClientFinishedLen;
        break;
      case HandshakeState::kClientAwaitServerFlight:
        send_handshake_flight(kClientFinishedLen);
        hs_state_ = HandshakeState::kClientAwaitServerFinished;
        hs_bytes_pending_ = kServerFinishedLen;
        break;
      case HandshakeState::kServerAwaitClientFinished:
        send_handshake_flight(kServerFinishedLen);
        become_established();
        break;
      case HandshakeState::kClientAwaitServerFinished:
        become_established();
        break;
      default:
        throw std::logic_error("tls::Session: handshake bytes in unexpected state");
    }
  }
}

void Session::become_established() {
  hs_state_ = HandshakeState::kEstablished;
  established_ = true;
  if (on_established) on_established();
}

WireRange Session::send_app(util::BytesView plaintext) {
  if (!established_) throw std::logic_error("tls::Session::send_app before handshake");
  const std::uint64_t begin = tcp_.bytes_enqueued();
  tcp_.send(seal_.seal_shared(ContentType::kApplicationData, plaintext));
  app_bytes_sent_ += plaintext.size();
  return WireRange{begin, tcp_.bytes_enqueued()};
}

std::int64_t Session::app_send_capacity() const noexcept {
  const std::int64_t raw = tcp_.send_capacity();
  // Worst-case overhead: one header+tag per kMaxPlaintext chunk, plus one.
  const std::int64_t per_record = static_cast<std::int64_t>(kHeaderBytes + kAeadOverhead);
  const std::int64_t chunks = raw / static_cast<std::int64_t>(kMaxPlaintext) + 2;
  return std::max<std::int64_t>(0, raw - chunks * per_record);
}

}  // namespace h2priv::tls
