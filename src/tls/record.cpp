#include "h2priv/tls/record.hpp"

#include <algorithm>
#include <array>
#include <string>

#include "h2priv/util/narrow.hpp"

namespace h2priv::tls {

namespace {

std::uint64_t mix(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

/// Keystream byte i for a given record.
std::uint8_t keystream_byte(std::uint64_t secret, std::uint8_t domain, std::uint64_t seq,
                            std::uint64_t i) noexcept {
  const std::uint64_t block = mix(secret ^ (static_cast<std::uint64_t>(domain) << 56) ^
                                  (seq * 0x9e3779b97f4a7c15ull) ^ (i / 8));
  return static_cast<std::uint8_t>(block >> ((i % 8) * 8));
}

/// 16-byte tag over the plaintext (keyed digest).
std::array<std::uint8_t, kAeadOverhead> compute_tag(std::uint64_t secret, std::uint8_t domain,
                                                    std::uint64_t seq,
                                                    util::BytesView plaintext) noexcept {
  std::uint64_t h1 = mix(secret ^ 0x746167u ^ seq);  // "tag"
  std::uint64_t h2 = mix(h1 ^ domain);
  for (const std::uint8_t b : plaintext) {
    h1 = mix(h1 ^ b);
    h2 = h2 * 31 + b;
  }
  std::array<std::uint8_t, kAeadOverhead> tag{};
  for (int i = 0; i < 8; ++i) {
    tag[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(h1 >> (i * 8));
    tag[static_cast<std::size_t>(i) + 8] = static_cast<std::uint8_t>(h2 >> (i * 8));
  }
  return tag;
}

ContentType check_type(std::uint8_t raw) {
  switch (raw) {
    case 20: return ContentType::kChangeCipherSpec;
    case 21: return ContentType::kAlert;
    case 22: return ContentType::kHandshake;
    case 23: return ContentType::kApplicationData;
    default: throw TlsError("invalid TLS content type " + std::to_string(raw));
  }
}

}  // namespace

util::Bytes SealContext::seal(ContentType type, util::BytesView plaintext) {
  util::ByteWriter w(sealed_size(plaintext.size()));
  std::size_t off = 0;
  do {
    const std::size_t chunk = std::min(plaintext.size() - off, kMaxPlaintext);
    const util::BytesView piece = plaintext.subspan(off, chunk);
    const std::uint64_t seq = seq_++;

    w.u8(static_cast<std::uint8_t>(type));
    w.u16(kVersionTls12);
    w.u16(util::narrow<std::uint16_t>(chunk + kAeadOverhead));
    for (std::size_t i = 0; i < chunk; ++i) {
      w.u8(static_cast<std::uint8_t>(piece[i] ^ keystream_byte(secret_, domain_, seq, i)));
    }
    const auto tag = compute_tag(secret_, domain_, seq, piece);
    w.bytes(util::BytesView(tag.data(), tag.size()));
    off += chunk;
  } while (off < plaintext.size());
  return w.take();
}

std::size_t SealContext::sealed_size(std::size_t plaintext_len) noexcept {
  const std::size_t records =
      plaintext_len == 0 ? 1 : (plaintext_len + kMaxPlaintext - 1) / kMaxPlaintext;
  return plaintext_len + records * (kHeaderBytes + kAeadOverhead);
}

OpenContext::Record OpenContext::open_one(util::BytesView wire, std::size_t& consumed) {
  RecordHeader hdr{};
  if (!parse_header(wire, hdr)) throw TlsError("open_one: truncated header");
  if (wire.size() < kHeaderBytes + hdr.ciphertext_len) throw TlsError("open_one: truncated body");
  if (hdr.ciphertext_len < kAeadOverhead) throw TlsError("open_one: body below tag size");

  const std::uint64_t seq = seq_++;
  const std::size_t ptext_len = hdr.ciphertext_len - kAeadOverhead;
  util::Bytes plaintext(ptext_len);
  for (std::size_t i = 0; i < ptext_len; ++i) {
    plaintext[i] = static_cast<std::uint8_t>(wire[kHeaderBytes + i] ^
                                             keystream_byte(secret_, domain_, seq, i));
  }
  const auto expect = compute_tag(secret_, domain_, seq, plaintext);
  const util::BytesView got = wire.subspan(kHeaderBytes + ptext_len, kAeadOverhead);
  if (!std::equal(expect.begin(), expect.end(), got.begin())) {
    throw TlsError("open_one: authentication failure (corrupted or out-of-order record)");
  }
  consumed = kHeaderBytes + hdr.ciphertext_len;
  return Record{hdr.type, std::move(plaintext)};
}

bool parse_header(util::BytesView buf, RecordHeader& out) {
  if (buf.size() < kHeaderBytes) return false;
  out.type = check_type(buf[0]);
  const std::uint16_t version = static_cast<std::uint16_t>((buf[1] << 8) | buf[2]);
  if (version != kVersionTls12) throw TlsError("unsupported TLS version on wire");
  out.ciphertext_len = static_cast<std::uint16_t>((buf[3] << 8) | buf[4]);
  return true;
}

}  // namespace h2priv::tls
