#include "h2priv/tls/record.hpp"

#include <algorithm>
#include <array>
#include <string>

#include "h2priv/obs/metrics.hpp"
#include "h2priv/util/narrow.hpp"

namespace h2priv::tls {

namespace {

std::uint64_t mix(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

/// Keystream: byte i of a record is XORed with byte (i % 8) of
/// mix(secret ^ domain<<56 ^ seq*golden ^ i/8). This form computes each
/// 8-byte block once instead of once per byte — byte-identical to the
/// per-byte definition (records always start at block offset 0). src == dst
/// is allowed.
void keystream_xor(std::uint64_t secret, std::uint8_t domain, std::uint64_t seq,
                   const std::uint8_t* src, std::uint8_t* dst, std::size_t n) noexcept {
  const std::uint64_t base = secret ^ (static_cast<std::uint64_t>(domain) << 56) ^
                             (seq * 0x9e3779b97f4a7c15ull);
  for (std::size_t i = 0; i < n; i += 8) {
    const std::uint64_t block = mix(base ^ (i / 8));
    const std::size_t m = std::min<std::size_t>(8, n - i);
    for (std::size_t j = 0; j < m; ++j) {
      dst[i + j] = static_cast<std::uint8_t>(src[i + j] ^ (block >> (j * 8)));
    }
  }
}

/// 16-byte tag over the plaintext (keyed digest). The first 8 bytes are a
/// serial mix chain (one data-dependent mix per byte — deliberately slow to
/// forge); the last 8 are a keyed polynomial checksum.
std::array<std::uint8_t, kAeadOverhead> compute_tag(std::uint64_t secret,
                                                    std::uint8_t domain,
                                                    std::uint64_t seq,
                                                    util::BytesView plaintext) noexcept {
  std::uint64_t h1 = mix(secret ^ 0x746167u ^ seq);  // "tag"
  std::uint64_t h2 = mix(h1 ^ domain);
  for (const std::uint8_t b : plaintext) {
    h1 = mix(h1 ^ b);
    h2 = h2 * 31 + b;
  }
  std::array<std::uint8_t, kAeadOverhead> tag{};
  for (int i = 0; i < 8; ++i) {
    tag[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(h1 >> (i * 8));
    tag[static_cast<std::size_t>(i) + 8] = static_cast<std::uint8_t>(h2 >> (i * 8));
  }
  return tag;
}

/// The polynomial half of the tag, unrolled 8 bytes per step (the eight
/// product terms are independent, so this runs at memory speed while the
/// per-byte form is latency-bound on the multiply). Identical value to the
/// `h2` accumulator in compute_tag.
std::uint64_t poly_checksum(std::uint64_t h2, util::BytesView plaintext) noexcept {
  constexpr std::uint64_t kP = 31;
  constexpr std::uint64_t kP2 = kP * kP, kP3 = kP2 * kP, kP4 = kP3 * kP;
  constexpr std::uint64_t kP5 = kP4 * kP, kP6 = kP5 * kP, kP7 = kP6 * kP, kP8 = kP7 * kP;
  const std::uint8_t* b = plaintext.data();
  std::size_t n = plaintext.size();
  for (; n >= 8; n -= 8, b += 8) {
    h2 = h2 * kP8 + b[0] * kP7 + b[1] * kP6 + b[2] * kP5 + b[3] * kP4 + b[4] * kP3 +
         b[5] * kP2 + b[6] * kP + b[7];
  }
  while (n-- > 0) h2 = h2 * kP + *b++;
  return h2;
}

ContentType check_type(std::uint8_t raw) {
  switch (raw) {
    case 20: return ContentType::kChangeCipherSpec;
    case 21: return ContentType::kAlert;
    case 22: return ContentType::kHandshake;
    case 23: return ContentType::kApplicationData;
    default: throw TlsError("invalid TLS content type " + std::to_string(raw));
  }
}

}  // namespace

void SealContext::seal_into(util::ByteWriter& w, ContentType type,
                            util::BytesView plaintext) {
  w.reserve(sealed_size(plaintext.size()));
  // Record quantization applies to application data only — the handshake
  // preamble must keep its recognizable flight sizes.
  const bool quantize = pad_bucket_ > 0 && type == ContentType::kApplicationData;
  // Quantized chunks leave one byte of headroom for the content marker.
  const std::size_t chunk_limit = quantize ? kMaxPlaintext - 1 : kMaxPlaintext;
  std::size_t off = 0;
  std::array<std::uint8_t, kMaxPlaintext> scratch;
  std::array<std::uint8_t, kMaxPlaintext> padded;
  do {
    const std::size_t chunk = std::min(plaintext.size() - off, chunk_limit);
    util::BytesView piece = plaintext.subspan(off, chunk);
    std::size_t content_len = chunk;
    if (quantize) {
      // TLS 1.3-style inner framing: content || 0x17 marker || zero filler,
      // rounded up to the bucket (capped at the record-size limit).
      const std::size_t rem = (chunk + 1) % pad_bucket_;
      content_len =
          std::min(chunk + 1 + (rem == 0 ? 0 : pad_bucket_ - rem), kMaxPlaintext);
      std::copy(piece.begin(), piece.end(), padded.begin());
      padded[chunk] = 0x17;
      std::fill(padded.begin() + static_cast<std::ptrdiff_t>(chunk + 1),
                padded.begin() + static_cast<std::ptrdiff_t>(content_len), 0);
      piece = util::BytesView(padded.data(), content_len);
      obs::count(obs::Counter::kTlsPadBytesSealed, content_len - chunk);
    }
    const std::uint64_t seq = seq_++;

    w.u8(static_cast<std::uint8_t>(type));
    w.u16(kVersionTls12);
    w.u16(util::narrow<std::uint16_t>(content_len + kAeadOverhead));
    keystream_xor(secret_, domain_, seq, piece.data(), scratch.data(), content_len);
    w.bytes(util::BytesView(scratch.data(), content_len));
    const auto tag = compute_tag(secret_, domain_, seq, piece);
    w.bytes(util::BytesView(tag.data(), tag.size()));
    obs::count(obs::Counter::kTlsRecordsSealed);
    obs::sample(obs::Hist::kTlsRecordBytes, content_len);
    off += chunk;
  } while (off < plaintext.size());
}

util::Bytes SealContext::seal(ContentType type, util::BytesView plaintext) {
  util::ByteWriter w(sealed_size(plaintext.size()));
  seal_into(w, type, plaintext);
  return w.take();
}

util::SharedBytes SealContext::seal_shared(ContentType type, util::BytesView plaintext) {
  util::ByteWriter w(util::default_pool(), sealed_size(plaintext.size()));
  seal_into(w, type, plaintext);
  return w.take_shared();
}

std::size_t SealContext::sealed_size(std::size_t plaintext_len) noexcept {
  const std::size_t records =
      plaintext_len == 0 ? 1 : (plaintext_len + kMaxPlaintext - 1) / kMaxPlaintext;
  return plaintext_len + records * (kHeaderBytes + kAeadOverhead);
}

OpenContext::Record OpenContext::open_one(util::BytesView wire, std::size_t& consumed) {
  RecordHeader hdr{};
  if (!parse_header(wire, hdr)) throw TlsError("open_one: truncated header");
  if (wire.size() < kHeaderBytes +
      hdr.ciphertext_len) throw TlsError("open_one: truncated body");
  if (hdr.ciphertext_len < kAeadOverhead) throw TlsError("open_one: body below tag size");

  const std::uint64_t seq = seq_++;
  const std::size_t ptext_len = hdr.ciphertext_len - kAeadOverhead;
  util::Bytes plaintext(ptext_len);
  keystream_xor(secret_, domain_, seq, wire.data() + kHeaderBytes, plaintext.data(),
                ptext_len);
  // Verify the polynomial half of the tag (a full 64-bit keyed check).
  // Corruption, truncation-at-record-granularity, replay, wrong secret and
  // wrong direction all perturb it exactly like the serial half, but it
  // vectorises — re-walking the serial mix chain here would put the
  // receive path back on the latency-bound critical path the seal side
  // already pays once to produce the wire bytes.
  const std::uint64_t h1 = mix(secret_ ^ 0x746167u ^ seq);
  const std::uint64_t expect_h2 = poly_checksum(mix(h1 ^ domain_), plaintext);
  const util::BytesView got = wire.subspan(kHeaderBytes + ptext_len, kAeadOverhead);
  std::uint64_t got_h2 = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    got_h2 |= static_cast<std::uint64_t>(got[8 + i]) << (i * 8);
  }
  if (got_h2 != expect_h2) {
    throw TlsError("open_one: authentication failure (corrupted or out-of-order record)");
  }
  consumed = kHeaderBytes + hdr.ciphertext_len;
  obs::count(obs::Counter::kTlsRecordsOpened);
  if (unpad_ && hdr.type == ContentType::kApplicationData) {
    // Quantized record: strip the zero filler down to the 0x17 marker. The
    // filler is authenticated, so a missing or wrong marker is hostile
    // input (a peer padding with garbage), not corruption.
    std::size_t end = plaintext.size();
    while (end > 0 && plaintext[end - 1] == 0) --end;
    if (end == 0 || plaintext[end - 1] != 0x17) {
      throw TlsError("open_one: quantized record has no content marker");
    }
    plaintext.resize(end - 1);
  }
  return Record{hdr.type, std::move(plaintext)};
}

bool parse_header(util::BytesView buf, RecordHeader& out) {
  if (buf.size() < kHeaderBytes) return false;
  out.type = check_type(buf[0]);
  const std::uint16_t version = static_cast<std::uint16_t>((buf[1] << 8) | buf[2]);
  if (version != kVersionTls12) throw TlsError("unsupported TLS version on wire");
  out.ciphertext_len = static_cast<std::uint16_t>((buf[3] << 8) | buf[4]);
  return true;
}

}  // namespace h2priv::tls
