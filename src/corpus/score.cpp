#include "h2priv/corpus/score.hpp"

#include <algorithm>
#include <iomanip>
#include <limits>
#include <numeric>
#include <sstream>

#include "h2priv/capture/replay.hpp"
#include "h2priv/capture/trace_view.hpp"
#include "h2priv/core/experiment.hpp"
#include "h2priv/obs/metrics.hpp"

namespace h2priv::corpus {

const char* classifier_name(Classifier classifier) noexcept {
  switch (classifier) {
    case Classifier::kNone: return "none";
    case Classifier::kNearest: return "nearest";
    case Classifier::kKnn: return "knn";
    case Classifier::kCentroid: return "centroid";
  }
  return "none";
}

std::optional<Classifier> classifier_from_name(std::string_view name) noexcept {
  if (name == "none") return Classifier::kNone;
  if (name == "nearest") return Classifier::kNearest;
  if (name == "knn") return Classifier::kKnn;
  if (name == "centroid") return Classifier::kCentroid;
  return std::nullopt;
}

std::optional<unsigned> features_from_names(std::string_view names) noexcept {
  unsigned mask = 0;
  while (!names.empty()) {
    const std::size_t comma = names.find(',');
    const std::string_view name = names.substr(0, comma);
    if (name == "bursts") {
      mask |= analysis::kFeatureBursts;
    } else if (name == "gaps") {
      mask |= analysis::kFeatureGapHist;
    } else if (name == "records") {
      mask |= analysis::kFeatureRecordHist;
    } else {
      return std::nullopt;
    }
    if (comma == std::string_view::npos) break;
    names.remove_prefix(comma + 1);
  }
  return mask == 0 ? std::nullopt : std::optional<unsigned>{mask};
}

std::string feature_names(unsigned features) {
  std::string out;
  const auto add = [&](const char* name) {
    if (!out.empty()) out += ',';
    out += name;
  };
  if ((features & analysis::kFeatureBursts) != 0) add("bursts");
  if ((features & analysis::kFeatureGapHist) != 0) add("gaps");
  if ((features & analysis::kFeatureRecordHist) != 0) add("records");
  if (out.empty()) out = "none";
  return out;
}

namespace {

/// Phase A, fleet flavour: demultiplex the trace through its kConnIds
/// columns and score every connection records-direct, exactly like the
/// single-connection fast path runs over a whole trace. The per-connection
/// summaries stored in kFleet are the fidelity cross-check; the trace-level
/// summary keeps only corpus-fold aggregates. Fleet traces never enter the
/// classifier split.
TraceScore score_fleet(const capture::TraceFile& trace,
                       const capture::ManifestEntry& entry,
                       const ScoreOptions& options) {
  TraceScore ts;
  ts.seed = entry.seed;
  ts.file = entry.file;
  ts.file_bytes = trace.file_size();
  ts.fleet = true;
  ts.had_stored_summary = true;  // every kFleet entry carries its summary
  ts.matches_stored_summary = true;
  ts.summary.monitor_packets = trace.packet_count();

  const std::vector<capture::DemuxedConn> conns = capture::demux_fleet(trace);
  const std::vector<capture::FleetConn>& fleet = trace.fleet();
  ts.conns.reserve(conns.size());
  for (std::size_t k = 0; k < conns.size(); ++k) {
    const capture::DemuxedConn& conn = conns[k];
    const core::ObjectPredictor predictor(conn.records_s2c,
                                          core::isidewith_catalog());
    ConnScore cs;
    cs.seed = conn.info.client_seed;
    cs.summary = capture::score_with_predictor(
        conn.meta, conn.info.truth, predictor,
        static_cast<std::uint64_t>(conn.packets.size()),
        capture::count_gets(conn.records_c2s));
    cs.matches_stored_summary = cs.summary == fleet[k].summary;
    ts.matches_stored_summary &= cs.matches_stored_summary;
    ts.summary.monitor_gets += cs.summary.monitor_gets;
    ts.summary.sequence_positions_correct +=
        cs.summary.sequence_positions_correct;
    ts.conns.push_back(std::move(cs));
  }

  if (options.replay_verify) {
    ts.replay_verified = true;
    const std::vector<capture::ReplayResult> replays =
        capture::replay_fleet(trace);
    for (std::size_t k = 0; k < replays.size(); ++k) {
      ts.replay_verified &= replays[k].records_match &&
                            replays[k].summary_matches &&
                            replays[k].summary == ts.conns[k].summary;
    }
  }
  obs::count(obs::Counter::kCorpusTracesScored);
  return ts;
}

/// Phase A: score one manifest entry off its mmap'd trace. Everything here
/// is a pure function of the trace bytes — safe to run on any worker.
TraceScore score_one(const Corpus& corpus, const capture::ManifestEntry& entry,
                     const ScoreOptions& options) {
  const capture::TraceFile trace =
      capture::TraceFile::open(trace_path(corpus, entry));
  if (trace.meta().fleet) return score_fleet(trace, entry, options);
  TraceScore ts;
  ts.seed = entry.seed;
  ts.file = entry.file;
  ts.file_bytes = trace.file_size();

  const analysis::GroundTruth truth = trace.ground_truth();
  const std::vector<analysis::RecordObservation> s2c =
      trace.records(net::Direction::kServerToClient);
  const std::vector<analysis::RecordObservation> c2s =
      trace.records(net::Direction::kClientToServer);
  const core::ObjectPredictor predictor(s2c, core::isidewith_catalog());
  ts.summary =
      capture::score_with_predictor(trace.meta(), truth, predictor,
                                    trace.packet_count(), capture::count_gets(c2s));
  ts.profile = analysis::build_feature_profile(
      options.features,
      predictor.bursts_after(util::TimePoint{trace.meta().attack_horizon_ns}), s2c);
  ts.true_label = core::party_label(trace.meta().party_order[0]);

  if (trace.has_section(capture::Section::kSummary)) {
    ts.had_stored_summary = true;
    ts.matches_stored_summary = trace.summary() == ts.summary;
  }
  if (options.replay_verify) {
    const capture::ReplayResult r = capture::replay(trace);
    ts.replay_verified =
        r.records_match && (!ts.had_stored_summary || r.summary_matches) &&
        r.summary == ts.summary;
  }
  obs::count(obs::Counter::kCorpusTracesScored);
  return ts;
}

/// Phase B: train the selected classifier on the training split and label
/// the eval split. Serial and in seed order throughout, so model contents
/// and verdicts never depend on worker interleaving.
void classify_split(std::vector<TraceScore>& traces, const ScoreOptions& options) {
  if (options.classifier == Classifier::kNone || options.train_mod == 0) return;

  analysis::Fingerprinter nearest;
  analysis::CentroidModel centroid;
  for (TraceScore& ts : traces) {
    if (ts.fleet) continue;  // N clients' bursts, no single label
    ts.trained = ts.seed % options.train_mod == 0;
    if (!ts.trained) continue;
    obs::count(obs::Counter::kScoreTrainTraces);
    if (options.classifier == Classifier::kCentroid) {
      centroid.train(ts.true_label, ts.profile);
    } else {
      nearest.train(ts.true_label, ts.profile);
    }
  }
  const bool untrained = options.classifier == Classifier::kCentroid
                             ? centroid.label_count() == 0
                             : nearest.trace_count() == 0;
  if (untrained) return;

  for (TraceScore& ts : traces) {
    if (ts.fleet || ts.trained) continue;
    obs::count(obs::Counter::kScoreEvalTraces);
    obs::count(obs::Counter::kScoreClassifications);
    switch (options.classifier) {
      case Classifier::kNone:
        break;
      case Classifier::kNearest: {
        const auto v = nearest.classify_with_margin(ts.profile);
        ts.predicted_label = v.label;
        ts.confidence = v.runner_up_distance - v.best_distance;
        ts.confidence_tie = -v.best_distance;
        break;
      }
      case Classifier::kKnn: {
        const auto v = nearest.classify_knn_with_votes(ts.profile, options.knn_k);
        ts.predicted_label = v.label;
        ts.confidence =
            static_cast<double>(v.votes) / static_cast<double>(v.k);
        ts.confidence_tie = -v.total_distance;
        break;
      }
      case Classifier::kCentroid: {
        const auto v = centroid.classify_with_margin(ts.profile);
        ts.predicted_label = v.label;
        ts.confidence = v.runner_up_distance - v.best_distance;
        ts.confidence_tie = -v.best_distance;
        break;
      }
    }
    // A single trained label yields an infinite margin; clamp so the curve
    // sort never compares inf - inf.
    if (!(ts.confidence <= std::numeric_limits<double>::max())) {
      ts.confidence = std::numeric_limits<double>::max();
    }
    ts.correct = !ts.predicted_label.empty() && ts.predicted_label == ts.true_label;
  }
}

/// Confidence-ranked prefix counts over the eval split: point k covers the
/// k most confident verdicts. Integer counts only — precision/recall/TPR/FPR
/// are derived at format time.
std::vector<CurvePoint> build_curve(const std::vector<TraceScore>& traces) {
  std::vector<const TraceScore*> eval;
  for (const TraceScore& ts : traces) {
    if (!ts.trained && !ts.predicted_label.empty()) eval.push_back(&ts);
  }
  std::sort(eval.begin(), eval.end(), [](const TraceScore* a, const TraceScore* b) {
    if (a->confidence != b->confidence) return a->confidence > b->confidence;
    if (a->confidence_tie != b->confidence_tie) {
      return a->confidence_tie > b->confidence_tie;
    }
    return a->seed < b->seed;
  });
  std::vector<CurvePoint> curve;
  curve.reserve(eval.size());
  CurvePoint point;
  for (const TraceScore* ts : eval) {
    ++point.accepted;
    if (ts->correct) {
      ++point.true_positive;
    } else {
      ++point.false_positive;
    }
    curve.push_back(point);
    obs::count(obs::Counter::kScoreCurvePoints);
  }
  return curve;
}

}  // namespace

ScoreReport score_corpus(const Corpus& corpus, const ScoreOptions& options) {
  ScoreReport report;
  report.scenario = corpus.manifest.scenario;
  report.base_seed = corpus.manifest.base_seed;
  report.classifier = options.classifier;
  report.features = options.features;
  report.knn_k = options.knn_k;
  report.train_mod = options.train_mod;

  const int n = static_cast<int>(corpus.manifest.entries.size());
  report.traces.resize(static_cast<std::size_t>(n));
  // Phase A: one slot per manifest index, so worker interleaving cannot
  // reorder the output; parallel_for folds per-worker metrics commutatively.
  core::parallel_for(n, options.parallelism, [&](int i) {
    const auto at = static_cast<std::size_t>(i);
    report.traces[at] = score_one(corpus, corpus.manifest.entries[at], options);
  });

  classify_split(report.traces, options);
  report.curve = build_curve(report.traces);

  for (const TraceScore& ts : report.traces) {
    report.total_file_bytes += ts.file_bytes;
    report.total_packets += ts.summary.monitor_packets;
    report.total_gets += ts.summary.monitor_gets;
    report.sequence_positions_correct += ts.summary.sequence_positions_correct;
    if (ts.fleet) {
      // Per-connection verdicts fold one unit per client, so a fleet trace
      // counts like N single-connection traces in the corpus totals.
      for (const ConnScore& cs : ts.conns) {
        report.html_identified += cs.summary.html.identified ? 1 : 0;
        for (const capture::ObjectVerdict& v : cs.summary.emblems_by_position) {
          report.attack_successes += v.attack_success ? 1 : 0;
        }
        ++report.stored_summaries;
        if (!cs.matches_stored_summary) ++report.summary_mismatches;
      }
    } else {
      report.html_identified += ts.summary.html.identified ? 1 : 0;
      for (const capture::ObjectVerdict& v : ts.summary.emblems_by_position) {
        report.attack_successes += v.attack_success ? 1 : 0;
      }
      report.stored_summaries += ts.had_stored_summary ? 1 : 0;
      if (ts.had_stored_summary && !ts.matches_stored_summary) {
        ++report.summary_mismatches;
      }
    }
    if (options.replay_verify && !ts.replay_verified) ++report.replay_failures;
    report.train_count += ts.trained ? 1 : 0;
    if (!ts.trained && !ts.predicted_label.empty()) {
      ++report.eval_count;
      report.eval_correct += ts.correct ? 1 : 0;
    }
  }
  return report;
}

namespace {

/// Exact decimal rendering of a ratio of integer counts (0 when the
/// denominator is 0); shortest round-trip digits keep the text stable
/// across platforms.
std::string ratio(std::uint64_t num, std::uint64_t den) {
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10)
     << (den == 0 ? 0.0
                  : static_cast<double>(num) / static_cast<double>(den));
  return os.str();
}

}  // namespace

std::string format_report(const ScoreReport& report) {
  std::ostringstream os;
  os << "h2t-score-report v1\n";
  os << "scenario " << report.scenario << "\n";
  os << "base_seed " << report.base_seed << "\n";
  os << "traces " << report.traces.size() << "\n";
  os << "classifier " << classifier_name(report.classifier);
  if (report.classifier == Classifier::kKnn) os << " k=" << report.knn_k;
  os << " train_mod=" << report.train_mod << "\n";
  os << "features " << feature_names(report.features) << "\n";
  os << "total_file_bytes " << report.total_file_bytes << "\n";
  os << "total_packets " << report.total_packets << "\n";
  os << "total_gets " << report.total_gets << "\n";
  os << "html_identified " << report.html_identified << "\n";
  os << "attack_successes " << report.attack_successes << "\n";
  os << "sequence_positions_correct " << report.sequence_positions_correct << "\n";
  os << "stored_summaries " << report.stored_summaries << " mismatches "
     << report.summary_mismatches << "\n";
  os << "replay_failures " << report.replay_failures << "\n";
  os << "split train " << report.train_count << " eval " << report.eval_count
     << " correct " << report.eval_correct << " accuracy "
     << ratio(report.eval_correct, report.eval_count) << "\n";

  for (const TraceScore& ts : report.traces) {
    os << "trace " << ts.seed << ' ' << ts.file << ' '
       << (ts.had_stored_summary
               ? (ts.matches_stored_summary ? "summary=ok" : "summary=MISMATCH")
               : "summary=absent")
       << " packets=" << ts.summary.monitor_packets
       << " gets=" << ts.summary.monitor_gets
       << " seq_correct=" << ts.summary.sequence_positions_correct;
    if (ts.fleet) os << " fleet=" << ts.conns.size();
    if (ts.trained) {
      os << " split=train";
    } else if (!ts.predicted_label.empty()) {
      os << " split=eval true=" << ts.true_label
         << " predicted=" << ts.predicted_label
         << (ts.correct ? " correct" : " wrong");
    }
    os << "\n";
    // Fleet traces: one verdict line per demultiplexed connection, in
    // connection-id order (absent for single-connection traces, so existing
    // corpora format byte-identically).
    for (std::size_t k = 0; k < ts.conns.size(); ++k) {
      const ConnScore& cs = ts.conns[k];
      std::int64_t emblem_successes = 0;
      for (const capture::ObjectVerdict& v : cs.summary.emblems_by_position) {
        emblem_successes += v.attack_success ? 1 : 0;
      }
      os << "  conn " << k << " seed " << cs.seed
         << " html=" << (cs.summary.html.identified ? "yes" : "no")
         << " emblems=" << emblem_successes << '/'
         << cs.summary.emblems_by_position.size()
         << " seq=" << cs.summary.sequence_positions_correct << '/'
         << cs.summary.emblems_by_position.size()
         << (cs.matches_stored_summary ? " summary=ok" : " summary=MISMATCH")
         << "\n";
    }
  }

  // ROC / precision-recall, derived per point from the integer counts. The
  // positive class is "classifier verdict is correct": TPR/recall rank
  // against all correct verdicts, FPR against all wrong ones.
  const std::uint64_t positives = report.eval_correct;
  const std::uint64_t negatives = report.eval_count - report.eval_correct;
  for (const CurvePoint& p : report.curve) {
    os << "curve accepted=" << p.accepted << " tp=" << p.true_positive
       << " fp=" << p.false_positive
       << " precision=" << ratio(p.true_positive, p.accepted)
       << " recall=" << ratio(p.true_positive, positives)
       << " fpr=" << ratio(p.false_positive, negatives) << "\n";
  }
  return os.str();
}

}  // namespace h2priv::corpus
