// Parallel offline scoring over a trace corpus — the paper's evaluation loop
// run at 10^5-trace scale without re-simulating anything.
//
// Phase A (parallel): every manifest entry streams through the records-direct
// scorer (capture::score_stored's machinery) off an mmap'd TraceFile — no TCP
// reassembly, no packet materialization, bounded memory per worker. Each
// trace yields its recomputed attack verdict, a stored-summary cross-check,
// its post-horizon burst-size profile and its ground-truth label. Results
// land in a pre-sized vector at the manifest index and metrics count into
// per-worker registries folded commutatively, so the pipeline output is
// bit-identical for any --jobs count.
//
// Phase B (serial, deterministic): split traces into train/eval by seed,
// train the selected size-fingerprint classifier (nearest / k-NN / centroid),
// classify the eval split, and fold per-trace verdicts into corpus totals
// plus confidence-ranked ROC / precision-recall curves built from integer
// prefix counts.
//
// format_report() renders the whole thing as deterministic text: two runs of
// the same corpus at any --jobs produce byte-identical reports, so `cmp` is
// the CI regression check (mirroring the corpus manifest contract).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "h2priv/analysis/fingerprint.hpp"
#include "h2priv/capture/trace_format.hpp"
#include "h2priv/core/parallel_runner.hpp"
#include "h2priv/corpus/store.hpp"

namespace h2priv::corpus {

/// Size-fingerprint classifier the eval split runs through.
enum class Classifier {
  kNone,      ///< scoring only, no train/eval split
  kNearest,   ///< 1-nearest training trace (Fingerprinter::classify)
  kKnn,       ///< k-NN majority vote (Fingerprinter::classify_knn)
  kCentroid,  ///< nearest per-label centroid (CentroidModel)
};

[[nodiscard]] const char* classifier_name(Classifier classifier) noexcept;
/// Parses "none" / "nearest" / "knn" / "centroid"; nullopt otherwise.
[[nodiscard]] std::optional<Classifier> classifier_from_name(
    std::string_view name) noexcept;

/// Parses a comma-separated feature-family list ("bursts,gaps,records") into
/// an analysis::Feature bitmask; nullopt on unknown names or an empty list.
[[nodiscard]] std::optional<unsigned> features_from_names(
    std::string_view names) noexcept;
/// Canonical comma-separated rendering of a feature bitmask (family order
/// bursts, gaps, records).
[[nodiscard]] std::string feature_names(unsigned features);

struct ScoreOptions {
  core::Parallelism parallelism{};
  Classifier classifier = Classifier::kNearest;
  /// Feature families folded into each trace's profile (analysis::Feature
  /// bits). The default reproduces the classic burst-size profile.
  unsigned features = analysis::kFeatureBursts;
  /// Neighbourhood size for Classifier::kKnn.
  std::size_t knn_k = 3;
  /// Train/eval split: seeds with seed % train_mod == 0 train the model,
  /// every other seed evaluates. 1 trains on everything (no eval split);
  /// 0 disables classification like Classifier::kNone.
  std::uint64_t train_mod = 4;
  /// Cross-check every trace with a full chunked replay (records_match +
  /// summary agreement) — an order of magnitude slower; off by default.
  bool replay_verify = false;
};

/// One demultiplexed connection of a fleet trace, scored records-direct —
/// the per-client analogue of a single-connection TraceScore.
struct ConnScore {
  std::uint64_t seed = 0;  ///< the client's own run seed (kFleet entry)
  /// Records-direct recomputed verdict over the demuxed record streams.
  capture::TraceSummary summary;
  /// Recomputed verdict equals the per-connection summary stored in kFleet.
  bool matches_stored_summary = false;
};

/// One trace's scored outcome (phase A) plus its classification (phase B).
struct TraceScore {
  std::uint64_t seed = 0;
  std::string file;  ///< corpus-root-relative path from the manifest
  std::uint64_t file_bytes = 0;
  /// Records-direct recomputed verdict (capture::score_with_predictor). For
  /// fleet traces this holds corpus-fold aggregates only (packet/GET/sequence
  /// totals over `conns`); the real verdicts are per connection.
  capture::TraceSummary summary;
  /// Fleet trace: per-connection verdicts live in `conns`, and the trace is
  /// excluded from the classifier split (its burst profile would mix N
  /// clients' pages into one unlabeled blob).
  bool fleet = false;
  std::vector<ConnScore> conns;  ///< connection-id order; empty unless fleet
  bool had_stored_summary = false;
  bool matches_stored_summary = false;  ///< recomputed == stored verdict
  bool replay_verified = false;         ///< only with ScoreOptions::replay_verify
  /// Ground-truth class: the party whose emblem the survey displays first.
  std::string true_label;
  analysis::SizeProfile profile;  ///< post-horizon burst-size profile

  // Phase B:
  bool trained = false;  ///< member of the training split
  std::string predicted_label;
  bool correct = false;
  /// Confidence ranking keys for the curves (primary desc, then tie desc,
  /// then seed asc). Comparison-only — never accumulated across traces.
  double confidence = 0;
  double confidence_tie = 0;
};

/// One point of the confidence-ranked curves: the top-`accepted` eval traces
/// by confidence, counted in integers (precision/recall/TPR/FPR are derived
/// at format time, never accumulated).
struct CurvePoint {
  std::uint64_t accepted = 0;
  std::uint64_t true_positive = 0;   ///< correctly classified among accepted
  std::uint64_t false_positive = 0;  ///< accepted - true_positive
};

struct ScoreReport {
  std::string scenario;
  std::uint64_t base_seed = 0;
  Classifier classifier = Classifier::kNone;
  unsigned features = analysis::kFeatureBursts;
  std::size_t knn_k = 0;
  std::uint64_t train_mod = 0;
  std::vector<TraceScore> traces;  ///< manifest (seed) order

  // Corpus totals (integer folds over `traces`).
  std::uint64_t total_file_bytes = 0;
  std::uint64_t total_packets = 0;
  std::int64_t total_gets = 0;
  std::uint64_t html_identified = 0;
  std::uint64_t attack_successes = 0;  ///< emblem positions, summed
  std::int64_t sequence_positions_correct = 0;
  std::uint64_t stored_summaries = 0;
  std::uint64_t summary_mismatches = 0;
  std::uint64_t replay_failures = 0;

  // Classification outcome.
  std::uint64_t train_count = 0;
  std::uint64_t eval_count = 0;
  std::uint64_t eval_correct = 0;
  std::vector<CurvePoint> curve;
};

/// Runs the two-phase pipeline over `corpus`. Throws capture::TraceError on
/// unreadable or malformed traces.
[[nodiscard]] ScoreReport score_corpus(const Corpus& corpus,
                                       const ScoreOptions& options);

/// Deterministic plain-text rendering of a report ("h2t-score-report v1").
[[nodiscard]] std::string format_report(const ScoreReport& report);

}  // namespace h2priv::corpus
