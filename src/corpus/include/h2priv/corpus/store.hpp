// Sharded corpus store: 10^5-trace corpora split across per-scenario shard
// subdirectories so no single directory (or manifest) grows unboundedly and
// shards can be generated, rsynced or deleted independently.
//
// Layout under one corpus root:
//
//   <root>/shard_000/run_<seed>.h2t     traces, shard_capacity per shard
//   <root>/shard_000/manifest.txt       per-shard manifest (flat file names)
//   <root>/shard_001/...
//   <root>/manifest.txt                 merged manifest, shard-relative paths
//
// The merged manifest is the corpus's regression surface, exactly like the
// flat corpus one: entries sorted by seed, every field a pure function of
// trace bytes and run parameters — so two generations of the same build are
// byte-identical at any --jobs count and `cmp` stays a sufficient CI check.
// A flat corpus (core::run_many's layout) is just the degenerate single-shard
// case; load_corpus() reads both.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "h2priv/capture/corpus.hpp"
#include "h2priv/core/experiment.hpp"
#include "h2priv/core/parallel_runner.hpp"

namespace h2priv::corpus {

/// Canonical shard subdirectory name ("shard_000", "shard_001", ...). Three
/// digits keep lexicographic and numeric order aligned through 10^5+ traces
/// at the default capacity; larger indices widen naturally.
[[nodiscard]] std::string shard_name(int index);

struct ShardOptions {
  /// Traces per shard subdirectory.
  int shard_capacity = 1'000;
};

/// Generates `n` seeded runs {config.seed .. config.seed+n-1} as a sharded
/// corpus under `config.capture.corpus_dir`: each shard is produced by
/// core::run_many (which writes the shard's traces and its own manifest),
/// then the shard manifests are folded into `<root>/manifest.txt` with
/// shard-relative file paths. Returns the merged manifest. Bit-identical
/// output for any `parallelism` — the per-shard manifests are sorted by
/// seed and the fold is a pure function of them.
capture::Manifest generate_sharded(const core::RunConfig& config, int n,
                                   const ShardOptions& options,
                                   core::Parallelism parallelism);

/// Folds shard manifests into one: `prefixes[i]` (e.g. "shard_000") is
/// prepended to every file path of `shards[i]`, entries are sorted by seed,
/// and exact duplicates (same seed, packets and digest) collapse to the
/// lexicographically smallest path. Two entries for one seed with different
/// digests or packet counts are corruption, not redundancy — TraceError.
/// The merged scenario is taken from the shards, which must agree;
/// base_seed is the smallest shard base_seed.
[[nodiscard]] capture::Manifest fold_manifests(
    const std::vector<capture::Manifest>& shards,
    const std::vector<std::string>& prefixes);

/// A corpus located on disk: its root directory plus the parsed manifest
/// (merged manifest for sharded corpora, the flat manifest otherwise —
/// entry file paths are root-relative in both layouts).
struct Corpus {
  std::string dir;
  capture::Manifest manifest;
};

/// Opens the corpus rooted at `dir` by parsing `<dir>/manifest.txt`.
/// Throws capture::TraceError if absent or malformed.
[[nodiscard]] Corpus load_corpus(const std::string& dir);

/// Absolute-ish path of one manifest entry's trace file.
[[nodiscard]] std::string trace_path(const Corpus& corpus,
                                     const capture::ManifestEntry& entry);

struct RecompressStats {
  std::uint64_t traces = 0;        ///< manifest entries visited
  std::uint64_t upgraded = 0;      ///< v1 files rewritten as v2
  std::uint64_t bytes_before = 0;  ///< on-disk trace bytes entering
  std::uint64_t bytes_after = 0;   ///< on-disk trace bytes leaving
};

/// Upgrades every v1 trace of the corpus at `dir` to the v2 compressed
/// format in place: each v1 file is decoded, re-encoded through TraceWriter
/// (write-to-temp + rename, so a crash never leaves a half-written trace),
/// and the manifest — root and any shard manifests — is rewritten with the
/// new digests and byte counts. The v2 writer is deterministic, so the
/// upgraded bytes are identical to what a live v2 capture of the same seed
/// would have produced, and re-running recompress is a no-op (v2 files are
/// left untouched). Traces fan out across `parallelism` workers; the
/// manifest rewrite is serial and sorted, so output is jobs-invariant.
RecompressStats recompress_corpus(const std::string& dir,
                                  core::Parallelism parallelism = {});

}  // namespace h2priv::corpus
