#include "h2priv/corpus/store.hpp"

#include <algorithm>
#include <map>

#include "h2priv/capture/trace_format.hpp"
#include "h2priv/obs/metrics.hpp"

namespace h2priv::corpus {

std::string shard_name(int index) {
  std::string digits = std::to_string(index);
  while (digits.size() < 3) digits.insert(digits.begin(), '0');
  return "shard_" + digits;
}

capture::Manifest generate_sharded(const core::RunConfig& config, int n,
                                   const ShardOptions& options,
                                   core::Parallelism parallelism) {
  if (config.capture.corpus_dir.empty()) {
    throw capture::TraceError("generate_sharded requires capture.corpus_dir");
  }
  if (options.shard_capacity < 1) {
    throw capture::TraceError("shard_capacity must be >= 1");
  }
  const std::string root = config.capture.corpus_dir;
  std::vector<capture::Manifest> shards;
  std::vector<std::string> prefixes;
  for (int shard = 0, done = 0; done < n; ++shard) {
    const int count = std::min(options.shard_capacity, n - done);
    core::RunConfig cfg = config;
    cfg.seed = config.seed + static_cast<std::uint64_t>(done);
    cfg.capture.corpus_dir = root + "/" + shard_name(shard);
    // run_many writes the shard's traces and its manifest.txt, parallel
    // across seeds within the shard.
    (void)core::run_many(cfg, count, parallelism);
    shards.push_back(capture::read_manifest(cfg.capture.corpus_dir + "/manifest.txt"));
    prefixes.push_back(shard_name(shard));
    obs::count(obs::Counter::kCorpusShardsWritten);
    done += count;
  }
  capture::Manifest merged = fold_manifests(shards, prefixes);
  // Authoritative even for an empty corpus (no shards to take them from).
  merged.scenario = config.capture.scenario;
  merged.base_seed = config.seed;
  capture::write_manifest(merged, root + "/manifest.txt");
  return merged;
}

capture::Manifest fold_manifests(const std::vector<capture::Manifest>& shards,
                                 const std::vector<std::string>& prefixes) {
  if (shards.size() != prefixes.size()) {
    throw capture::TraceError("fold_manifests: one prefix per shard required");
  }
  capture::Manifest merged;
  bool first = true;
  // seed -> canonical entry; std::map keeps the fold ordered and deterministic.
  std::map<std::uint64_t, capture::ManifestEntry> by_seed;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const capture::Manifest& shard = shards[s];
    if (first) {
      merged.scenario = shard.scenario;
      merged.base_seed = shard.base_seed;
      first = false;
    } else {
      if (shard.scenario != merged.scenario) {
        throw capture::TraceError("fold_manifests: scenario mismatch (\"" +
                                  merged.scenario + "\" vs \"" + shard.scenario +
                                  "\")");
      }
      merged.base_seed = std::min(merged.base_seed, shard.base_seed);
    }
    for (capture::ManifestEntry entry : shard.entries) {
      if (!prefixes[s].empty()) entry.file = prefixes[s] + "/" + entry.file;
      const auto [it, inserted] = by_seed.emplace(entry.seed, entry);
      if (inserted) continue;
      capture::ManifestEntry& kept = it->second;
      if (kept.digest != entry.digest || kept.packets != entry.packets) {
        throw capture::TraceError(
            "fold_manifests: conflicting entries for seed " +
            std::to_string(entry.seed) + " (" + kept.file + " vs " + entry.file +
            ")");
      }
      // Exact duplicate (a re-generated shard, say): keep the smallest path
      // so the fold is independent of shard order.
      if (entry.file < kept.file) kept.file = entry.file;
    }
  }
  merged.entries.reserve(by_seed.size());
  for (const auto& [seed, entry] : by_seed) merged.entries.push_back(entry);
  obs::count(obs::Counter::kCorpusManifestsMerged);
  return merged;
}

Corpus load_corpus(const std::string& dir) {
  return Corpus{dir, capture::read_manifest(dir + "/manifest.txt")};
}

std::string trace_path(const Corpus& corpus, const capture::ManifestEntry& entry) {
  return corpus.dir + "/" + entry.file;
}

}  // namespace h2priv::corpus
