#include "h2priv/corpus/store.hpp"

#include <algorithm>
#include <filesystem>
#include <map>

#include "h2priv/capture/trace_format.hpp"
#include "h2priv/capture/trace_reader.hpp"
#include "h2priv/capture/trace_view.hpp"
#include "h2priv/capture/trace_writer.hpp"
#include "h2priv/obs/metrics.hpp"

namespace h2priv::corpus {

std::string shard_name(int index) {
  std::string digits = std::to_string(index);
  while (digits.size() < 3) digits.insert(digits.begin(), '0');
  return "shard_" + digits;
}

capture::Manifest generate_sharded(const core::RunConfig& config, int n,
                                   const ShardOptions& options,
                                   core::Parallelism parallelism) {
  if (config.capture.corpus_dir.empty()) {
    throw capture::TraceError("generate_sharded requires capture.corpus_dir");
  }
  if (options.shard_capacity < 1) {
    throw capture::TraceError("shard_capacity must be >= 1");
  }
  const std::string root = config.capture.corpus_dir;
  std::vector<capture::Manifest> shards;
  std::vector<std::string> prefixes;
  for (int shard = 0, done = 0; done < n; ++shard) {
    const int count = std::min(options.shard_capacity, n - done);
    core::RunConfig cfg = config;
    cfg.seed = config.seed + static_cast<std::uint64_t>(done);
    cfg.capture.corpus_dir = root + "/" + shard_name(shard);
    // run_many writes the shard's traces and its manifest.txt, parallel
    // across seeds within the shard.
    (void)core::run_many(cfg, count, parallelism);
    shards.push_back(capture::read_manifest(cfg.capture.corpus_dir + "/manifest.txt"));
    prefixes.push_back(shard_name(shard));
    obs::count(obs::Counter::kCorpusShardsWritten);
    done += count;
  }
  capture::Manifest merged = fold_manifests(shards, prefixes);
  // Authoritative even for an empty corpus (no shards to take them from).
  merged.scenario = config.capture.scenario;
  merged.base_seed = config.seed;
  capture::write_manifest(merged, root + "/manifest.txt");
  return merged;
}

capture::Manifest fold_manifests(const std::vector<capture::Manifest>& shards,
                                 const std::vector<std::string>& prefixes) {
  if (shards.size() != prefixes.size()) {
    throw capture::TraceError("fold_manifests: one prefix per shard required");
  }
  capture::Manifest merged;
  bool first = true;
  // seed -> canonical entry; std::map keeps the fold ordered and deterministic.
  std::map<std::uint64_t, capture::ManifestEntry> by_seed;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const capture::Manifest& shard = shards[s];
    if (first) {
      merged.scenario = shard.scenario;
      merged.base_seed = shard.base_seed;
      first = false;
    } else {
      if (shard.scenario != merged.scenario) {
        throw capture::TraceError("fold_manifests: scenario mismatch (\"" +
                                  merged.scenario + "\" vs \"" + shard.scenario +
                                  "\")");
      }
      merged.base_seed = std::min(merged.base_seed, shard.base_seed);
    }
    for (capture::ManifestEntry entry : shard.entries) {
      if (!prefixes[s].empty()) entry.file = prefixes[s] + "/" + entry.file;
      const auto [it, inserted] = by_seed.emplace(entry.seed, entry);
      if (inserted) continue;
      capture::ManifestEntry& kept = it->second;
      if (kept.digest != entry.digest || kept.packets != entry.packets) {
        throw capture::TraceError(
            "fold_manifests: conflicting entries for seed " +
            std::to_string(entry.seed) + " (" + kept.file + " vs " + entry.file +
            ")");
      }
      // Exact duplicate (a re-generated shard, say): keep the smallest path
      // so the fold is independent of shard order.
      if (entry.file < kept.file) kept.file = entry.file;
    }
  }
  merged.entries.reserve(by_seed.size());
  for (const auto& [seed, entry] : by_seed) merged.entries.push_back(entry);
  obs::count(obs::Counter::kCorpusManifestsMerged);
  return merged;
}

Corpus load_corpus(const std::string& dir) {
  return Corpus{dir, capture::read_manifest(dir + "/manifest.txt")};
}

std::string trace_path(const Corpus& corpus, const capture::ManifestEntry& entry) {
  return corpus.dir + "/" + entry.file;
}

namespace {

/// Re-encodes one v1 trace through the v2 writer, write-to-temp + rename.
/// The writer is fed observations in the same per-direction order a live
/// capture produces, so the output is byte-identical to a native v2 trace
/// of the same run.
void rewrite_trace(const std::string& path) {
  const capture::TraceReader reader = capture::TraceReader::open(path);
  const std::string tmp = path + ".recompress.tmp";
  capture::TraceWriter writer(tmp, reader.meta());
  for (const analysis::PacketObservation& p : reader.packets()) {
    writer.add_packet(p);
  }
  for (const net::Direction dir :
       {net::Direction::kClientToServer, net::Direction::kServerToClient}) {
    for (const analysis::RecordObservation& r : reader.records(dir)) {
      writer.add_record(r);
    }
  }
  if (reader.has_ground_truth()) writer.set_ground_truth(reader.ground_truth());
  if (reader.has_summary()) writer.set_summary(reader.summary());
  writer.finish();
  std::filesystem::rename(tmp, path);
}

}  // namespace

RecompressStats recompress_corpus(const std::string& dir,
                                  core::Parallelism parallelism) {
  Corpus corpus = load_corpus(dir);
  const int n = static_cast<int>(corpus.manifest.entries.size());
  RecompressStats stats;
  stats.traces = static_cast<std::uint64_t>(n);

  // Phase A (parallel): each entry owns its file and its manifest slot, so
  // workers never contend; per-entry outcomes land at the manifest index.
  std::vector<std::uint8_t> upgraded(static_cast<std::size_t>(n), 0);
  std::vector<std::uint64_t> before(static_cast<std::size_t>(n), 0);
  core::parallel_for(n, parallelism, [&](int i) {
    const auto at = static_cast<std::size_t>(i);
    capture::ManifestEntry& entry = corpus.manifest.entries[at];
    const std::string path = trace_path(corpus, entry);
    std::uint16_t version = 0;
    {
      const capture::TraceFile trace = capture::TraceFile::open(path);
      before[at] = trace.file_size();
      version = trace.version();
    }
    if (version < capture::kFormatVersion) {
      rewrite_trace(path);
      upgraded[at] = 1;
    }
    entry.digest = capture::digest_file(path);
    const capture::TraceSizes sizes = capture::trace_sizes(path);
    entry.raw_bytes = sizes.raw_bytes;
    entry.stored_bytes = sizes.stored_bytes;
  });
  for (std::size_t i = 0; i < static_cast<std::size_t>(n); ++i) {
    stats.upgraded += upgraded[i];
    stats.bytes_before += before[i];
    stats.bytes_after += corpus.manifest.entries[i].stored_bytes;
  }

  // Phase B (serial): rewrite the manifests with the new digests and byte
  // counts — any shard manifests first, then the root.
  std::map<std::string, std::vector<const capture::ManifestEntry*>> by_shard;
  for (const capture::ManifestEntry& entry : corpus.manifest.entries) {
    const std::size_t slash = entry.file.find('/');
    if (slash != std::string::npos) {
      by_shard[entry.file.substr(0, slash)].push_back(&entry);
    }
  }
  for (const auto& [shard, entries] : by_shard) {
    const std::string manifest_path = dir + "/" + shard + "/manifest.txt";
    capture::Manifest shard_manifest = capture::read_manifest(manifest_path);
    std::map<std::uint64_t, const capture::ManifestEntry*> by_seed;
    for (const capture::ManifestEntry* e : entries) by_seed.emplace(e->seed, e);
    for (capture::ManifestEntry& e : shard_manifest.entries) {
      const auto it = by_seed.find(e.seed);
      if (it == by_seed.end()) continue;
      e.digest = it->second->digest;
      e.raw_bytes = it->second->raw_bytes;
      e.stored_bytes = it->second->stored_bytes;
    }
    capture::write_manifest(shard_manifest, manifest_path);
  }
  capture::write_manifest(corpus.manifest, dir + "/manifest.txt");
  return stats;
}

}  // namespace h2priv::corpus
