#include "h2priv/defense/grid.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <stdexcept>

#include "h2priv/capture/trace_view.hpp"
#include "h2priv/core/experiment.hpp"
#include "h2priv/core/scenario.hpp"
#include "h2priv/obs/metrics.hpp"

namespace h2priv::defense {

namespace {

/// Fixed-precision decimal rendering: every double in the report derives
/// from integer folds, so this is byte-stable across runs and job counts.
std::string fixed(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

[[nodiscard]] double ratio(std::uint64_t num, std::uint64_t den) noexcept {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}

/// The adversary's size catalog, as raw sizes (results HTML + emblems).
/// Routed through core: defense has no layering edge to web/ and the grid
/// must attack exactly the catalog the live predictor uses.
std::vector<std::size_t> catalog_sizes() {
  const analysis::SizeCatalog catalog = core::isidewith_catalog();
  std::vector<std::size_t> sizes;
  for (const analysis::SizeCatalog::Entry& e : catalog.entries()) {
    sizes.push_back(e.body_size);
  }
  return sizes;
}

/// Emblems in the catalog (= party count): every entry except the HTML.
std::uint64_t emblem_count() {
  const analysis::SizeCatalog catalog = core::isidewith_catalog();
  return static_cast<std::uint64_t>(catalog.entries().size()) - 1;
}

/// Mean relative distance (percent) of every post-horizon burst estimate to
/// its nearest catalog size — how badly the defense degraded the size
/// estimator. Serial fold in run order: deterministic.
double size_error_pct(const std::vector<core::RunResult>& results) {
  const std::vector<std::size_t> sizes = catalog_sizes();
  double sum = 0.0;
  std::uint64_t n = 0;
  for (const core::RunResult& r : results) {
    for (const analysis::EstimatedObject& burst : r.debug_bursts) {
      double best = std::numeric_limits<double>::infinity();
      for (const std::size_t s : sizes) {
        const double err =
            std::abs(static_cast<double>(burst.body_estimate) - static_cast<double>(s)) /
            static_cast<double>(s);
        best = std::min(best, err);
      }
      sum += best;
      ++n;
    }
  }
  return n == 0 ? 0.0 : 100.0 * sum / static_cast<double>(n);
}

/// Total wire bytes (both directions) over every trace of the corpus — the
/// bandwidth-overhead numerator. Serial over the manifest: deterministic.
std::uint64_t corpus_wire_bytes(const corpus::Corpus& c) {
  std::uint64_t total = 0;
  for (const capture::ManifestEntry& entry : c.manifest.entries) {
    const capture::TraceFile trace = capture::TraceFile::open(trace_path(c, entry));
    capture::PacketCursor cursor = trace.packets();
    analysis::PacketObservation p;
    while (cursor.next(p)) total += static_cast<std::uint64_t>(p.wire_size);
  }
  return total;
}

GridCell score_attack(const corpus::Corpus& c, const GridAttack& attack,
                      const GridOptions& options) {
  corpus::ScoreOptions so;
  so.parallelism = options.parallelism;
  so.classifier = attack.classifier;
  so.features = attack.features;
  so.knn_k = attack.knn_k;
  // kNone is the catalog attack: recovery is the stored pipeline's emblem
  // success rate, no train/eval split needed.
  so.train_mod = attack.classifier == corpus::Classifier::kNone ? 0 : options.train_mod;
  const corpus::ScoreReport report = corpus::score_corpus(c, so);

  GridCell cell;
  cell.attack = attack.name;
  if (attack.classifier == corpus::Classifier::kNone) {
    cell.successes = report.attack_successes;
    cell.total = static_cast<std::uint64_t>(report.traces.size()) * emblem_count();
  } else {
    cell.successes = report.eval_correct;
    cell.total = report.eval_count;
  }
  cell.recovery = ratio(cell.successes, cell.total);
  return cell;
}

}  // namespace

std::vector<GridAttack> default_grid_attacks() {
  return {
      {"catalog", corpus::Classifier::kNone, analysis::kFeatureBursts, 3},
      {"knn", corpus::Classifier::kKnn, analysis::kFeatureBursts, 3},
      {"centroid", corpus::Classifier::kCentroid, analysis::kFeatureRecordHist, 3},
  };
}

GridReport run_grid(const GridOptions& options) {
  if (options.root.empty()) throw std::invalid_argument("grid: empty root directory");
  if (options.runs <= 0) throw std::invalid_argument("grid: runs must be positive");
  const std::vector<std::string> defenses =
      options.defenses.empty() ? defense_preset_names() : options.defenses;
  const std::vector<GridAttack> attacks =
      options.attacks.empty() ? default_grid_attacks() : options.attacks;

  GridReport report;
  report.scenario = options.scenario;
  report.base_seed = options.base_seed;
  report.runs = options.runs;
  report.train_mod = options.train_mod;
  for (const GridAttack& a : attacks) report.attacks.push_back(a.name);

  for (const std::string& name : defenses) {
    const std::optional<DefenseConfig> config = defense_from_name(name);
    if (!config) throw std::invalid_argument("grid: unknown defense preset " + name);

    // Regenerate the row's corpus from scratch — a stale directory from a
    // different build or config must not leak into the scores.
    const std::string dir = options.root + "/" + name;
    std::filesystem::remove_all(dir);

    // The scenario registry supplies the run shape (the default "table2"
    // arms the attack pipeline); the defense preset layers on top.
    core::RunConfig rc = core::scenario_config(options.scenario);
    rc.seed = options.base_seed;
    rc.server.defense = *config;
    rc.capture.corpus_dir = dir;
    rc.capture.scenario = options.scenario + "+" + name;
    // Workers fold their counters into this thread's registry, so the delta
    // across run_many is the row's exact defense-injected byte count.
    obs::Registry& reg = obs::current();
    const std::uint64_t pad_before = reg.get(obs::Counter::kH2PadBytesSent) +
                                     reg.get(obs::Counter::kTlsPadBytesSealed);
    const std::vector<core::RunResult> results =
        core::run_many(rc, options.runs, options.parallelism);
    const std::uint64_t pad_after = reg.get(obs::Counter::kH2PadBytesSent) +
                                    reg.get(obs::Counter::kTlsPadBytesSealed);

    DefenseRow row;
    row.defense = name;
    row.config = *config;
    row.traces = options.runs;
    std::uint64_t completed = 0;
    double load_sum = 0.0;
    for (const core::RunResult& r : results) {
      if (!r.page_complete) continue;
      ++completed;
      load_sum += r.page_load_seconds;
    }
    row.page_load_ms =
        completed == 0 ? 0.0 : 1000.0 * load_sum / static_cast<double>(completed);
    row.size_error_pct = size_error_pct(results);

    row.pad_bytes = pad_after - pad_before;

    const corpus::Corpus c = corpus::load_corpus(dir);
    row.wire_bytes = corpus_wire_bytes(c);
    if (row.wire_bytes > row.pad_bytes) {
      row.overhead_pct = 100.0 * static_cast<double>(row.pad_bytes) /
                         static_cast<double>(row.wire_bytes - row.pad_bytes);
    }
    for (const GridAttack& a : attacks) row.cells.push_back(score_attack(c, a, options));
    double recovery_sum = 0.0;
    for (const GridCell& cell : row.cells) recovery_sum += cell.recovery;
    row.mean_recovery =
        row.cells.empty() ? 0.0 : recovery_sum / static_cast<double>(row.cells.size());
    report.rows.push_back(std::move(row));
  }

  // Costs are relative to the undefended row, when the sweep includes one.
  const auto baseline =
      std::find_if(report.rows.begin(), report.rows.end(),
                   [](const DefenseRow& r) { return !r.config.enabled(); });
  if (baseline != report.rows.end()) {
    for (DefenseRow& row : report.rows) {
      row.added_latency_ms = row.page_load_ms - baseline->page_load_ms;
    }
  }
  return report;
}

std::string format_grid_report(const GridReport& report) {
  std::string out = "h2t-defense-grid v1\n";
  out += "scenario " + report.scenario + "\n";
  out += "base-seed " + std::to_string(report.base_seed) + " runs " +
         std::to_string(report.runs) + " train-mod " + std::to_string(report.train_mod) +
         "\n";
  out += "attacks";
  for (const std::string& a : report.attacks) out += " " + a;
  out += "\n";
  for (const DefenseRow& row : report.rows) {
    out += "defense " + row.defense;
    out += " traces " + std::to_string(row.traces);
    out += " wire-bytes " + std::to_string(row.wire_bytes);
    out += " pad-bytes " + std::to_string(row.pad_bytes);
    out += " overhead-pct " + fixed(row.overhead_pct, 2);
    out += " page-ms " + fixed(row.page_load_ms, 3);
    out += " added-ms " + fixed(row.added_latency_ms, 3);
    out += " size-err-pct " + fixed(row.size_error_pct, 2);
    for (const GridCell& cell : row.cells) {
      out += " " + cell.attack + " " + std::to_string(cell.successes) + "/" +
             std::to_string(cell.total) + " " + fixed(cell.recovery, 4);
    }
    out += " mean " + fixed(row.mean_recovery, 4);
    out += "\n";
  }
  out += "end\n";
  return out;
}

std::vector<std::string> check_grid_invariants(const GridReport& report) {
  std::vector<std::string> violations;
  const auto baseline =
      std::find_if(report.rows.begin(), report.rows.end(),
                   [](const DefenseRow& r) { return !r.config.enabled(); });
  if (baseline == report.rows.end()) {
    violations.push_back("no undefended baseline row in the grid");
    return violations;
  }
  for (const DefenseRow& row : report.rows) {
    if (&row == &*baseline) continue;
    const bool inflates = row.config.padding != PaddingPolicy::kNone ||
                          row.config.record_bucket > 0;
    if (inflates && row.pad_bytes == 0) {
      violations.push_back("defense " + row.defense +
                           " pads frames or records but reports no bandwidth overhead");
    }
    for (std::size_t i = 0; i < row.cells.size() && i < baseline->cells.size(); ++i) {
      if (row.cells[i].recovery > baseline->cells[i].recovery) {
        violations.push_back("defense " + row.defense + " raises " +
                             row.cells[i].attack + " recovery above the baseline (" +
                             fixed(row.cells[i].recovery, 4) + " > " +
                             fixed(baseline->cells[i].recovery, 4) + ")");
      }
    }
  }
  return violations;
}

}  // namespace h2priv::defense
