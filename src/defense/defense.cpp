#include "h2priv/defense/defense.hpp"

#include <algorithm>
#include <array>
#include <utility>

namespace h2priv::defense {

namespace {

DefenseConfig preset_pad_random() {
  DefenseConfig d;
  d.padding = PaddingPolicy::kPerFrameRandom;
  d.pad_random_max = 255;
  return d;
}

DefenseConfig preset_pad_bucket() {
  DefenseConfig d;
  d.padding = PaddingPolicy::kPadToBucket;
  // 64 is deliberately a half-measure: frame inflation (~32 bytes/frame)
  // sits at the edge of the catalog matcher's tolerance, so the attack
  // degrades instead of dying — the mid-point of the trade-off curve.
  d.pad_bucket = 64;
  return d;
}

DefenseConfig preset_quantize() {
  DefenseConfig d;
  d.record_bucket = 4 * 1024;
  return d;
}

DefenseConfig preset_shape() {
  DefenseConfig d;
  d.shape_interval = util::milliseconds(3);
  d.shape_rate = util::megabits_per_second(16);
  d.randomize_priority = true;
  return d;
}

DefenseConfig preset_quantize_shape() {
  DefenseConfig d = preset_shape();
  d.record_bucket = preset_quantize().record_bucket;
  return d;
}

DefenseConfig preset_full() {
  DefenseConfig d = preset_quantize_shape();
  d.padding = PaddingPolicy::kPadToBucket;
  d.pad_bucket = 256;
  return d;
}

/// Preset table in grid-row order (cheapest first).
const std::array<std::pair<const char*, DefenseConfig (*)()>, 7>& presets() {
  static const std::array<std::pair<const char*, DefenseConfig (*)()>, 7> kPresets = {{
      {"none", [] { return DefenseConfig{}; }},
      {"pad-random", preset_pad_random},
      {"pad-bucket", preset_pad_bucket},
      {"quantize", preset_quantize},
      {"shape", preset_shape},
      {"quantize+shape", preset_quantize_shape},
      {"full", preset_full},
  }};
  return kPresets;
}

}  // namespace

const char* to_string(PaddingPolicy policy) noexcept {
  switch (policy) {
    case PaddingPolicy::kNone: return "none";
    case PaddingPolicy::kPerFrameRandom: return "random";
    case PaddingPolicy::kPadToBucket: return "bucket";
  }
  return "?";
}

std::optional<PaddingPolicy> padding_policy_from_name(std::string_view name) noexcept {
  if (name == "none") return PaddingPolicy::kNone;
  if (name == "random") return PaddingPolicy::kPerFrameRandom;
  if (name == "bucket") return PaddingPolicy::kPadToBucket;
  return std::nullopt;
}

std::optional<DefenseConfig> defense_from_name(std::string_view name) noexcept {
  for (const auto& [preset_name, make] : presets()) {
    if (name == preset_name) return make();
  }
  return std::nullopt;
}

std::string defense_name(const DefenseConfig& config) {
  for (const auto& [preset_name, make] : presets()) {
    if (config == make()) return preset_name;
  }
  return "custom";
}

std::vector<std::string> defense_preset_names() {
  std::vector<std::string> names;
  names.reserve(presets().size());
  for (const auto& [preset_name, make] : presets()) names.emplace_back(preset_name);
  return names;
}

std::uint8_t data_pad_length(const DefenseConfig& config, std::size_t payload_len,
                             sim::Rng& rng) {
  switch (config.padding) {
    case PaddingPolicy::kNone:
      return 0;
    case PaddingPolicy::kPerFrameRandom:
      return static_cast<std::uint8_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(config.pad_random_max)));
    case PaddingPolicy::kPadToBucket: {
      // Quantize the frame payload length: data + pad-length byte + pad is
      // rounded up to the bucket. One u8 holds the pad, hence the clamp.
      const std::size_t bucket = std::clamp<std::size_t>(config.pad_bucket, 2, 256);
      const std::size_t rem = (payload_len + 1) % bucket;
      return static_cast<std::uint8_t>(rem == 0 ? 0 : bucket - rem);
    }
  }
  return 0;
}

}  // namespace h2priv::defense
