// Defense layer: the knobs a privacy-conscious deployment could turn against
// the paper's passive adversary, unified behind one DefenseConfig so every
// scenario, capture and replay path runs defended or undefended
// deterministically (DESIGN.md §11).
//
// Three countermeasure families, composable:
//  - h2 DATA padding (RFC 7540 §6.1 PADDED flag): per-frame random pad or
//    pad-to-bucket quantization of the frame payload length;
//  - TLS record quantization: the server's record layer rounds every
//    application-data record up to a fixed bucket before sealing, so the
//    5-byte headers the adversary reads stop tracking object boundaries;
//  - server-side shaping: DATA emission is paced on a constant-rate clock
//    (bursts within one tick coalesce back-to-back) and the scheduler's
//    next-handler pick is randomized, decoupling wire order from request
//    order.
//
// The trade-off methodology follows "You get PADDING, everybody gets
// PADDING!" (PAPERS.md): each preset is only meaningful as a point on the
// (recovery-rate reduction) vs (bandwidth/latency overhead) curve — see
// grid.hpp for the harness that sweeps it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "h2priv/sim/rng.hpp"
#include "h2priv/util/units.hpp"

namespace h2priv::defense {

/// How DATA frames are padded on the defended connection.
enum class PaddingPolicy : std::uint8_t {
  kNone = 0,
  kPerFrameRandom = 1,  ///< pad length drawn uniformly from [0, pad_random_max]
  kPadToBucket = 2,     ///< frame payload (data + pad-length byte + pad)
                        ///< rounded up to a multiple of pad_bucket
};

[[nodiscard]] const char* to_string(PaddingPolicy policy) noexcept;
/// Parses "none" / "random" / "bucket"; nullopt otherwise.
[[nodiscard]] std::optional<PaddingPolicy> padding_policy_from_name(
    std::string_view name) noexcept;

struct DefenseConfig {
  PaddingPolicy padding = PaddingPolicy::kNone;
  /// Bucket for PaddingPolicy::kPadToBucket. One pad-length byte holds at
  /// most 255 pad bytes, so buckets are clamped to [2, 256]; use
  /// record_bucket for coarser quantization.
  std::size_t pad_bucket = 256;
  /// Upper bound for PaddingPolicy::kPerFrameRandom draws.
  std::uint8_t pad_random_max = 255;

  /// TLS record quantization: server-to-client application-data records are
  /// padded to a multiple of this many plaintext bytes before sealing
  /// (clamped to tls::kMaxPlaintext). 0 = off.
  std::size_t record_bucket = 0;

  /// Constant-rate pacing: when both fields are set, the server pump runs
  /// on a fixed shape_interval clock and emits at most
  /// shape_rate * shape_interval bytes per tick, coalesced back-to-back.
  /// Either field 0 = pump on transport backpressure (no shaping).
  util::Duration shape_interval{};
  util::BitRate shape_rate{};

  /// Randomize which started handler writes each chunk instead of strict
  /// round-robin order.
  bool randomize_priority = false;

  [[nodiscard]] bool shaping() const noexcept {
    return shape_interval.ns > 0 && shape_rate.bits_per_sec > 0;
  }
  [[nodiscard]] bool enabled() const noexcept {
    return padding != PaddingPolicy::kNone || record_bucket > 0 || shaping() ||
           randomize_priority;
  }

  friend bool operator==(const DefenseConfig&, const DefenseConfig&) = default;
};

/// Named presets — the rows of the default evaluation grid:
///   none           undefended baseline
///   pad-random     per-frame random DATA padding (0..255)
///   pad-bucket     DATA payloads padded to 256-byte buckets
///   quantize       TLS records quantized to 4 KiB plaintext buckets
///   shape          paced + coalesced emission, randomized handler order
///   quantize+shape both of the above
///   full           pad-bucket + quantize + shape
[[nodiscard]] std::optional<DefenseConfig> defense_from_name(
    std::string_view name) noexcept;
/// The preset name of `config`, or "custom" if it matches none.
[[nodiscard]] std::string defense_name(const DefenseConfig& config);
/// Preset names in grid-row order.
[[nodiscard]] std::vector<std::string> defense_preset_names();

/// Pad length for a DATA frame about to carry `payload_len` body bytes,
/// under `config.padding`. Draws from `rng` only for kPerFrameRandom, so a
/// deterministic policy never perturbs the rng stream.
[[nodiscard]] std::uint8_t data_pad_length(const DefenseConfig& config,
                                           std::size_t payload_len, sim::Rng& rng);

/// `len` rounded up to the next multiple of `bucket` (identity when bucket
/// is 0 or len is already aligned).
[[nodiscard]] constexpr std::size_t round_up_to_bucket(std::size_t len,
                                                       std::size_t bucket) noexcept {
  if (bucket == 0) return len;
  const std::size_t rem = len % bucket;
  return rem == 0 ? len : len + (bucket - rem);
}

}  // namespace h2priv::defense
