// Attack x defense evaluation grid (DESIGN.md §11).
//
// One grid run sweeps a set of defense presets (rows) against a set of
// attack configurations (columns) over freshly generated trace corpora —
// one corpus per defense, same seeds, same scenario — and reports, per
// cell, the adversary's recovery rate, and per row, what the defense cost:
// bandwidth overhead against the undefended baseline row, added page-load
// latency, and the damage to the adversary's size estimates.
//
// Determinism contract: everything in the report is either an integer fold
// in manifest order or a fixed-precision rendering of such folds, so two
// grid runs of the same build are byte-identical at any --jobs count —
// `cmp` of two reports is the CI smoke gate (h2priv_trace grid --gate).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "h2priv/core/parallel_runner.hpp"
#include "h2priv/corpus/score.hpp"
#include "h2priv/defense/defense.hpp"

namespace h2priv::defense {

/// One attack column: a size-fingerprint pipeline configuration. The
/// "catalog" attack (corpus::Classifier::kNone) is the paper's live
/// predictor — catalog matching of post-horizon bursts; the others train on
/// the defended corpus itself (a worst-case adversary that adapts).
struct GridAttack {
  std::string name;
  corpus::Classifier classifier = corpus::Classifier::kNone;
  unsigned features = analysis::kFeatureBursts;
  std::size_t knn_k = 3;
};

/// The default three-column panel: catalog matching, k-NN on burst
/// profiles, centroids on record-size profiles.
[[nodiscard]] std::vector<GridAttack> default_grid_attacks();

struct GridOptions {
  /// Working directory: one corpus subdirectory per defense row is
  /// (re)generated under it.
  std::string root;
  std::string scenario = "table2";
  std::uint64_t base_seed = 1;
  int runs = 20;
  /// Defense preset names (grid rows); empty = every preset.
  std::vector<std::string> defenses;
  /// Attack columns; empty = default_grid_attacks().
  std::vector<GridAttack> attacks;
  /// Train/eval split for the trained classifiers (corpus::ScoreOptions).
  std::uint64_t train_mod = 2;
  core::Parallelism parallelism{};
};

/// One (defense, attack) cell: integer success counts plus their ratio.
struct GridCell {
  std::string attack;
  std::uint64_t successes = 0;
  std::uint64_t total = 0;
  double recovery = 0.0;  ///< successes / total (0 when total is 0)
};

/// One defense row: costs vs the baseline row plus every attack cell.
struct DefenseRow {
  std::string defense;
  DefenseConfig config{};
  int traces = 0;
  std::uint64_t wire_bytes = 0;    ///< sum of packet wire sizes, all traces
  /// Bytes the defense itself injected (DATA pad + record fill), from the
  /// obs counters — exact and independent of run dynamics, unlike a wire
  /// delta (attack-coupled retransmission noise can swamp small pads).
  std::uint64_t pad_bytes = 0;
  double overhead_pct = 0.0;       ///< pad_bytes over the unpadded volume
  double page_load_ms = 0.0;       ///< mean page-load time, completed runs
  double added_latency_ms = 0.0;   ///< page_load_ms delta vs the "none" row
  double size_error_pct = 0.0;     ///< mean burst-estimate distance to catalog
  std::vector<GridCell> cells;     ///< one per attack column
  double mean_recovery = 0.0;      ///< mean over cells
};

struct GridReport {
  std::string scenario;
  std::uint64_t base_seed = 0;
  int runs = 0;
  std::uint64_t train_mod = 0;
  std::vector<std::string> attacks;  ///< column order
  std::vector<DefenseRow> rows;      ///< option order
};

/// Generates the per-defense corpora and scores every cell. Throws
/// capture::TraceError / std::invalid_argument on unknown names.
[[nodiscard]] GridReport run_grid(const GridOptions& options);

/// Deterministic plain-text rendering ("h2t-defense-grid v1").
[[nodiscard]] std::string format_grid_report(const GridReport& report);

/// Sanity invariants for CI gating; returns human-readable violations
/// (empty = pass):
///  - every size-inflating row (padding or record quantization) must report
///    nonzero injected pad bytes (bandwidth overhead);
///  - no defended cell may recover more than the undefended baseline cell
///    of the same attack column.
[[nodiscard]] std::vector<std::string> check_grid_invariants(const GridReport& report);

}  // namespace h2priv::defense
