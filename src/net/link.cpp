#include "h2priv/net/link.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "h2priv/obs/metrics.hpp"

namespace h2priv::net {

Link::Link(sim::Simulator& sim, LinkConfig config, sim::Rng rng, PacketSink out)
    : sim_(sim), config_(config), rng_(std::move(rng)), out_(std::move(out)) {
  if (!out_) throw std::invalid_argument("Link: null output sink");
}

void Link::send(Packet&& p) {
  ++stats_.sent;
  stats_.bytes_sent += p.wire_size();
  if (rng_.chance(config_.loss_probability)) {
    ++stats_.lost;
    obs::count(obs::Counter::kNetLinkLost);
    obs::current().trace().push(sim_.now().ns, obs::TraceLayer::kNet,
                                obs::TraceEvent::kPacketLost, p.id,
                                static_cast<std::uint64_t>(p.wire_size()));
    return;
  }
  if (config_.burst_capacity_packets > 0) {
    const util::TimePoint now = sim_.now();
    while (!recent_arrivals_.empty() &&
           recent_arrivals_.front() < now - config_.burst_window) {
      recent_arrivals_.pop_front();
    }
    recent_arrivals_.push_back(now);
    if (static_cast<int>(recent_arrivals_.size()) > config_.burst_capacity_packets &&
        rng_.chance(config_.burst_excess_loss)) {
      ++stats_.lost;
      ++stats_.burst_dropped;
      obs::count(obs::Counter::kNetLinkLost);
      obs::count(obs::Counter::kNetLinkBurstDropped);
      obs::current().trace().push(sim_.now().ns, obs::TraceLayer::kNet,
                                  obs::TraceEvent::kPacketLost, p.id,
                                  static_cast<std::uint64_t>(p.wire_size()));
      return;
    }
  }
  const util::TimePoint start = std::max(sim_.now(), busy_until_);
  const util::TimePoint departed = start + config_.rate.transmission_time(p.wire_size());
  busy_until_ = departed;

  util::Duration prop = config_.propagation;
  if (config_.jitter_sigma.ns > 0) {
    prop = rng_.jittered(config_.propagation, config_.jitter_sigma, util::Duration{0});
    obs::count(obs::Counter::kNetLinkJittered);
  }
  ++stats_.delivered;
  sim_.schedule_at(departed + prop,
                   [this, pkt = std::move(p)]() mutable { out_(std::move(pkt)); });
}

}  // namespace h2priv::net
