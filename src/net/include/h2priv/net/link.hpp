// Unidirectional point-to-point link with propagation delay, serialization
// at a configured rate, optional random jitter and random loss.
//
// FIFO discipline: a packet's departure is max(arrival, link busy-until) +
// transmission time; propagation (plus jitter noise) is added after
// departure, so jitter can reorder deliveries just like `tc netem` does.
#pragma once

#include <deque>
#include <functional>
#include <optional>

#include "h2priv/net/packet.hpp"
#include "h2priv/sim/rng.hpp"
#include "h2priv/sim/simulator.hpp"
#include "h2priv/util/units.hpp"

namespace h2priv::net {

/// Where a link (or middlebox port) delivers packets.
using PacketSink = std::function<void(Packet&&)>;

struct LinkConfig {
  util::Duration propagation{util::microseconds(500)};
  util::BitRate rate{util::gigabits_per_second(1)};
  /// Std-dev of per-packet propagation noise; 0 = deterministic path.
  util::Duration jitter_sigma{};
  /// Independent per-packet loss probability (background loss, not the
  /// adversary's targeted drops — those live in the Middlebox).
  double loss_probability = 0.0;

  /// Drop-tail contention model for a shared egress: when more than
  /// `burst_capacity_packets` arrive within `burst_window`, each excess
  /// packet is dropped with `burst_excess_loss`. Upstream shaping smooths
  /// arrivals below the threshold — the physical reason bandwidth throttling
  /// *reduces* retransmissions in the paper's Fig. 5. 0 disables the model.
  int burst_capacity_packets = 0;
  util::Duration burst_window{util::milliseconds(1)};
  double burst_excess_loss = 0.5;
};

class Link {
 public:
  Link(sim::Simulator& sim, LinkConfig config, sim::Rng rng, PacketSink out);

  /// Accepts a packet for transmission; delivery is scheduled on the
  /// simulator. Lost packets vanish (counted in stats).
  void send(Packet&& p);

  struct Stats {
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;  // scheduled for delivery (sent - lost)
    std::uint64_t lost = 0;
    std::uint64_t burst_dropped = 0;  // subset of lost: contention drops
    std::int64_t bytes_sent = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  void set_rate(util::BitRate rate) noexcept { config_.rate = rate; }
  [[nodiscard]] const LinkConfig& config() const noexcept { return config_; }

 private:
  sim::Simulator& sim_;
  LinkConfig config_;
  sim::Rng rng_;
  PacketSink out_;
  util::TimePoint busy_until_{};
  std::deque<util::TimePoint> recent_arrivals_;  // for the contention model
  Stats stats_;
};

}  // namespace h2priv::net
