// Network-layer packet model.
//
// A Packet carries one TCP segment (already in wire format) plus the fixed
// IP header overhead used for link-timing purposes. Packets deliberately
// carry NO ground-truth metadata: everything an on-path device learns, it
// learns by parsing the wire bytes, exactly like the paper's adversary.
#pragma once

#include <cstdint>

#include "h2priv/util/buffer_pool.hpp"
#include "h2priv/util/bytes.hpp"

namespace h2priv::net {

/// Direction of travel on the client<->server path.
enum class Direction : std::uint8_t {
  kClientToServer = 0,
  kServerToClient = 1,
};

[[nodiscard]] constexpr Direction opposite(Direction d) noexcept {
  return d == Direction::kClientToServer ? Direction::kServerToClient
                                         : Direction::kClientToServer;
}

[[nodiscard]] constexpr const char* to_string(Direction d) noexcept {
  return d == Direction::kClientToServer ? "client->server" : "server->client";
}

/// Bytes of IP header accounted for in link serialization timing.
inline constexpr std::int64_t kIpHeaderBytes = 20;

struct Packet {
  std::uint64_t id = 0;           ///< globally unique, assigned at first send
  Direction dir = Direction::kClientToServer;
  /// TCP segment in wire format (header + payload). Ref-counted and pooled:
  /// copying a Packet shares the bytes, and the single pooled allocation
  /// made at segment-encode time survives link -> middlebox -> monitor ->
  /// receiver without further copies.
  util::SharedBytes segment;

  /// On-the-wire size including IP header (what a link must serialize).
  [[nodiscard]] std::int64_t wire_size() const noexcept {
    return kIpHeaderBytes + static_cast<std::int64_t>(segment.size());
  }
};

}  // namespace h2priv::net
