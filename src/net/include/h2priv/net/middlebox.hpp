// The compromised on-path network device (the adversary's vantage point).
//
// Per direction, a packet passes through:
//   ingress tap -> drop decision -> bandwidth shaper (FIFO) -> hold stage
// The hold stage lets policies delay individual packets past the shaper
// (the jitter / request-spacing attack) and may reorder, mirroring `tc netem`
// semantics. All policy is injected as std::function so the core::
// NetworkController composes programs without the middlebox knowing about
// TLS, HTTP/2 or the attack at all.
#pragma once

#include <array>
#include <functional>
#include <optional>
#include <vector>

#include "h2priv/net/link.hpp"
#include "h2priv/net/packet.hpp"
#include "h2priv/sim/simulator.hpp"

namespace h2priv::net {

/// Observes every packet entering the middlebox (before any drop decision).
using PacketTap =
    std::function<void(Direction, const Packet&, util::TimePoint arrival)>;

/// Returns true if the packet must be dropped.
using DropFn = std::function<bool(const Packet&)>;

/// Given a packet and the earliest time it could be forwarded, returns the
/// actual forwarding time (must be >= ready).
using HoldFn = std::function<util::TimePoint(const Packet&, util::TimePoint ready)>;

class Middlebox {
 public:
  explicit Middlebox(sim::Simulator& sim) : sim_(sim) {}

  /// Wires the forwarding destination for a direction (typically the next Link).
  void set_output(Direction d, PacketSink out) { port(d).out = std::move(out); }

  /// Entry point: packets arriving from either side are pushed here.
  void process(Direction d, Packet&& p);

  /// Registers an observer for all transiting packets.
  void add_tap(PacketTap tap) { taps_.push_back(std::move(tap)); }

  /// Applies or clears a per-direction bandwidth cap (the shaper).
  void set_bandwidth_limit(Direction d, std::optional<util::BitRate> rate) {
    port(d).bandwidth = rate;
  }

  /// Installs / clears the targeted-drop policy for a direction.
  void set_drop_fn(Direction d, DropFn fn) { port(d).drop = std::move(fn); }

  /// Installs / clears the hold (extra delay / spacing) policy.
  void set_hold_fn(Direction d, HoldFn fn) { port(d).hold = std::move(fn); }

  struct Stats {
    std::uint64_t seen = 0;
    std::uint64_t dropped = 0;
    std::uint64_t forwarded = 0;
    std::uint64_t held = 0;  ///< packets whose hold stage added delay
  };
  [[nodiscard]] const Stats& stats(Direction d) const noexcept {
    return ports_[static_cast<std::size_t>(d)].stats;
  }

 private:
  struct PortState {
    PacketSink out;
    std::optional<util::BitRate> bandwidth;
    DropFn drop;
    HoldFn hold;
    util::TimePoint shaper_busy_until{};
    Stats stats;
  };

  PortState& port(Direction d) noexcept { return ports_[static_cast<std::size_t>(d)]; }

  sim::Simulator& sim_;
  std::array<PortState, 2> ports_{};
  std::vector<PacketTap> taps_;
};

}  // namespace h2priv::net
