#include "h2priv/net/middlebox.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "h2priv/obs/metrics.hpp"

namespace h2priv::net {

void Middlebox::process(Direction d, Packet&& p) {
  PortState& port_state = port(d);
  if (!port_state.out) throw std::logic_error("Middlebox: output not wired");

  obs::Registry& reg = obs::current();
  ++port_state.stats.seen;
  reg.add(obs::Counter::kNetMbSeen);
  const util::TimePoint arrival = sim_.now();
  for (const auto& tap : taps_) tap(d, p, arrival);

  if (port_state.drop && port_state.drop(p)) {
    ++port_state.stats.dropped;
    reg.add(obs::Counter::kNetMbDropped);
    reg.trace().push(arrival.ns, obs::TraceLayer::kNet, obs::TraceEvent::kPacketDropped,
                     p.id, static_cast<std::uint64_t>(p.wire_size()));
    return;
  }

  // Shaper: FIFO serialization at the (possibly adversarially lowered) rate.
  util::TimePoint ready = arrival;
  if (port_state.bandwidth) {
    const util::TimePoint start = std::max(arrival, port_state.shaper_busy_until);
    ready = start + port_state.bandwidth->transmission_time(p.wire_size());
    port_state.shaper_busy_until = ready;
    reg.add(obs::Counter::kNetMbThrottled);
    if (start > arrival) {
      reg.trace().push(arrival.ns, obs::TraceLayer::kNet,
                       obs::TraceEvent::kPacketThrottled, p.id,
                       static_cast<std::uint64_t>((start - arrival).ns));
    }
  }

  // Hold stage: policy may push individual packets later (request spacing).
  util::TimePoint release = ready;
  if (port_state.hold) {
    release = port_state.hold(p, ready);
    if (release < ready) throw std::logic_error("Middlebox: hold released packet early");
    if (release > ready) {
      ++port_state.stats.held;
      reg.add(obs::Counter::kNetMbHeld);
      reg.trace().push(arrival.ns, obs::TraceLayer::kNet, obs::TraceEvent::kPacketHeld,
                       p.id, static_cast<std::uint64_t>((release - ready).ns));
    }
  }

  ++port_state.stats.forwarded;
  reg.add(obs::Counter::kNetMbForwarded);
  sim_.schedule_at(release, [&port_state, pkt = std::move(p)]() mutable {
    port_state.out(std::move(pkt));
  });
}

}  // namespace h2priv::net
