#include "h2priv/client/browser.hpp"

#include <algorithm>
#include <stdexcept>

namespace h2priv::client {

BrowserConfig BrowserConfig::firefox_like() {
  BrowserConfig c;
  c.h2.local_settings.initial_window_size = 1 << 20;           // 1 MiB per stream
  c.h2.local_settings.max_concurrent_streams = 256;
  c.h2.connection_window_extra = 12 * (1 <<
                                       20) - 65'535;      // ~12 MiB connection window
  return c;
}

Browser::Browser(sim::Simulator& sim, const web::Site& site, web::RequestPlan plan,
                 BrowserConfig config, tls::Session& session, sim::Rng rng)
    : sim_(sim),
      site_(site),
      plan_(std::move(plan)),
      config_(config),
      session_(session),
      rng_(std::move(rng)) {
  conn_ = std::make_unique<h2::Connection>(
      h2::Role::kClient, config_.h2, [this](util::BytesView bytes) -> h2::WireSpan {
        const tls::WireRange range = session_.send_app(bytes);
        return h2::WireSpan{range.begin, range.end};
      });

  // Locate the deferred phase (first deferred item).
  deferred_start_ = plan_.items.size();
  for (std::size_t i = 0; i < plan_.items.size(); ++i) {
    if (plan_.items[i].deferred) {
      deferred_start_ = i;
      break;
    }
  }
  for (const auto& item : plan_.items) {
    progress_[item.object_id].object_id = item.object_id;
  }

  session_.on_established = [this] {
    conn_->start();
    begin_plan();
  };
  session_.on_app_data = [this](util::BytesView bytes) { conn_->on_bytes(bytes); };
  session_.on_closed = [this](tcp::CloseReason reason) {
    if (reason != tcp::CloseReason::kNormal && !stats_.page_complete) {
      mark_broken(reason == tcp::CloseReason::kBroken ? "transport retransmission limit"
                                                      : "transport reset");
    }
  };

  conn_->on_response_headers = [this](std::uint32_t stream_id, const hpack::HeaderList&) {
    const auto it = streams_.find(stream_id);
    if (it == streams_.end()) return;
    ObjectProgress& p = progress_.at(it->second.object_id);
    if (!p.complete) {
      p.response_started = true;
      arm_stall_timer(it->second.object_id);
    }
  };
  conn_->on_data = [this](std::uint32_t stream_id, util::BytesView bytes, bool end) {
    const auto it = streams_.find(stream_id);
    if (it == streams_.end()) return;  // stream we already reset or finished
    const web::ObjectId object_id = it->second.object_id;
    it->second.bytes += bytes.size();
    ObjectProgress& p = progress_.at(object_id);
    if (!p.complete) {
      p.bytes_received = std::max(p.bytes_received, it->second.bytes);
      arm_stall_timer(object_id);  // progress: push the stall horizon out
    }
    if (end) {
      streams_.erase(it);
      if (!p.complete) on_object_complete(object_id);
    }
  };
  conn_->on_rst_stream = [this](std::uint32_t stream_id, h2::ErrorCode) {
    streams_.erase(stream_id);
  };
  conn_->on_push_promise = [this](std::uint32_t, std::uint32_t promised,
                                  const hpack::HeaderList& headers) {
    // Accept the pushed resource: route its stream to the matching object so
    // its delivery satisfies the plan without a request of ours.
    for (const hpack::Header& h : headers) {
      if (h.name != ":path") continue;
      if (const web::SiteObject* object = site_.find_by_path(h.value)) {
        if (const auto it = progress_.find(object->id); it != progress_.end()) {
          streams_.emplace(promised, PendingStream{object->id, 0});
          it->second.requested = true;
          it->second.response_started = true;
          ++stats_.pushes_accepted;
        }
      }
    }
  };
}

const Browser::ObjectProgress& Browser::progress(web::ObjectId id) const {
  const auto it = progress_.find(id);
  if (it == progress_.end()) throw std::out_of_range("Browser::progress: unknown object");
  return it->second;
}

void Browser::begin_plan() {
  util::Duration at{};
  for (std::size_t i = 0; i < deferred_start_; ++i) {
    at += plan_.items[i].gap_before;
    schedule_item(i, at);
  }
}

void Browser::schedule_item(std::size_t index, util::Duration delay) {
  sim_.schedule(delay, [this, index] {
    if (stats_.broken) return;
    // Already satisfied from cache (e.g. a server push): no request needed.
    if (progress_.at(plan_.items[index].object_id).complete) return;
    issue_request(plan_.items[index].object_id, /*is_rerequest=*/false);
  });
}

void Browser::issue_request(web::ObjectId object_id, bool is_rerequest) {
  if (!session_.established()) return;
  const web::SiteObject& object = site_.object(object_id);
  const std::uint32_t stream_id = conn_->send_request({
      {":method", "GET"},
      {":scheme", "https"},
      {":authority", "www.isidewith.com"},
      {":path", object.path},
      {"user-agent", "Mozilla/5.0 (sim) Gecko/20100101 Firefox/74.0"},
      {"accept", "*/*"},
  });
  streams_.emplace(stream_id, PendingStream{object_id, 0});

  ObjectProgress& p = progress_.at(object_id);
  if (!p.requested) {
    p.requested = true;
    p.first_request_time = sim_.now();
    ++stats_.requests_sent;
  }
  if (is_rerequest) {
    ++p.rerequests;
    ++stats_.rerequests_sent;
  }
  if (!p.complete) arm_stall_timer(object_id);
}

void Browser::arm_stall_timer(web::ObjectId object_id) {
  cancel_stall_timer(object_id);
  const ObjectProgress& p = progress_.at(object_id);
  util::Duration base =
      p.response_started ? config_.stream_timeout : config_.pending_timeout;
  if (!p.response_started) {
    // Unanswered requests back off per retry (stall_current_ holds the
    // stretched value once a retry fired).
    if (const auto it = stall_current_.find(object_id); it != stall_current_.end()) {
      base = it->second;
    }
  }
  const util::Duration timeout{static_cast<std::int64_t>(
      static_cast<double>(base.ns) * patience_)};
  stall_timers_[object_id] =
      sim_.schedule(timeout, [this, object_id] { on_stall(object_id); });
}

void Browser::cancel_stall_timer(web::ObjectId object_id) {
  if (const auto it = stall_timers_.find(object_id); it != stall_timers_.end()) {
    sim_.cancel(it->second);
    stall_timers_.erase(it);
  }
}

void Browser::on_stall(web::ObjectId object_id) {
  stall_timers_.erase(object_id);
  ObjectProgress& p = progress_.at(object_id);
  if (p.complete || stats_.broken) return;

  if (p.rerequests < config_.max_rerequests_per_object) {
    // The paper's "TCP fast-retransmit" analogue: fire the GET again; the
    // server will serve another copy concurrently.
    auto [it, inserted] = stall_current_.try_emplace(object_id, config_.pending_timeout);
    it->second = util::Duration{static_cast<std::int64_t>(
        static_cast<double>(it->second.ns) * config_.stall_backoff)};
    issue_request(object_id, /*is_rerequest=*/true);
    return;
  }
  reset_episode(object_id);
}

void Browser::reset_episode(web::ObjectId trigger_object) {
  if (stats_.reset_episodes >= static_cast<std::uint64_t>(config_.max_reset_episodes)) {
    mark_broken("reset episodes exhausted");
    return;
  }
  ++stats_.reset_episodes;

  // RST_STREAM everything still open: the server flushes those queues.
  std::vector<std::uint32_t> open;
  open.reserve(streams_.size());
  for (const auto& [stream_id, pending] : streams_) open.push_back(stream_id);
  for (const std::uint32_t stream_id : open) {
    conn_->rst_stream(stream_id, h2::ErrorCode::kCancel);
    ++stats_.rst_streams_sent;
  }
  streams_.clear();
  for (auto& [object_id, timer] : stall_timers_) sim_.cancel(timer);
  stall_timers_.clear();

  // Back off the stall clock (the TCP stack raises its timers after loss) and
  // allow a fresh re-request budget for what is still missing.
  patience_ *= config_.reset_stall_multiplier;
  stall_current_.clear();
  for (auto& [object_id, p] : progress_) {
    if (!p.complete) p.response_started = false;  // reset streams died with their data
  }

  std::vector<web::ObjectId> missing;
  for (const auto& [object_id, p] : progress_) {
    if (p.requested && !p.complete && object_id != trigger_object) {
      missing.push_back(object_id);
    }
  }
  // The high-priority object is re-requested first, on its own; the rest of
  // the catch-up follows after the network has had a chance to recover.
  const auto re_get = [this](web::ObjectId object_id) {
    if (stats_.broken || progress_.at(object_id).complete) return;
    progress_.at(object_id).rerequests = 0;
    issue_request(object_id, /*is_rerequest=*/true);
  };
  if (!progress_.at(trigger_object).complete) {
    sim_.schedule(config_.post_reset_delay,
                  [re_get, trigger_object] { re_get(trigger_object); });
  }
  util::Duration at = config_.post_reset_delay + config_.post_reset_secondary_delay;
  for (const web::ObjectId object_id : missing) {
    sim_.schedule(at, [re_get, object_id] { re_get(object_id); });
    at += config_.post_reset_request_gap;
  }
}

void Browser::on_object_complete(web::ObjectId object_id) {
  ObjectProgress& p = progress_.at(object_id);
  p.complete = true;
  p.complete_time = sim_.now();
  cancel_stall_timer(object_id);
  stall_current_.erase(object_id);

  // Script-driven phase: the emblem requests fire after the HTML completes.
  if (!deferred_triggered_ && plan_.trigger_object != 0 &&
      object_id == plan_.trigger_object) {
    deferred_triggered_ = true;
    util::Duration at = plan_.trigger_delay;
    for (std::size_t i = deferred_start_; i < plan_.items.size(); ++i) {
      at += plan_.items[i].gap_before;
      schedule_item(i, at);
    }
  }
  check_page_complete();
}

void Browser::check_page_complete() {
  for (const auto& item : plan_.items) {
    if (!progress_.at(item.object_id).complete) return;
  }
  if (stats_.page_complete) return;
  stats_.page_complete = true;
  stats_.page_complete_time = sim_.now();
  if (on_page_complete) on_page_complete();
}

void Browser::mark_broken(std::string reason) {
  if (stats_.broken) return;
  stats_.broken = true;
  for (auto& [object_id, timer] : stall_timers_) sim_.cancel(timer);
  stall_timers_.clear();
  if (on_broken) on_broken(std::move(reason));
}

}  // namespace h2priv::client
