// Browser model (Firefox-like HTTP/2 client).
//
// Executes a web::RequestPlan over one HTTP/2 connection and reacts to
// network trouble the way the paper's client does:
//  - *stalled response* -> re-issue the GET on a fresh stream (the paper's
//    "retransmission requests"; each one spawns another server thread and
//    intensifies multiplexing, Fig. 4),
//  - *persistent stall* (re-requests exhausted) -> reset episode: RST_STREAM
//    every open response stream (the server flushes its queues), back off
//    the stall clock, then re-GET what is still missing (Fig. 6),
//  - transport death -> the page load is marked broken.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "h2priv/h2/connection.hpp"
#include "h2priv/sim/rng.hpp"
#include "h2priv/sim/simulator.hpp"
#include "h2priv/tls/session.hpp"
#include "h2priv/web/site.hpp"

namespace h2priv::client {

struct BrowserConfig {
  h2::ConnectionConfig h2{};
  /// A request with NO response bytes at all for this long is presumed lost
  /// -> re-request (grows by backoff per retry). This is the clock the
  /// adversary's request spacing provokes into "fast retransmit" storms.
  util::Duration pending_timeout{util::milliseconds(800)};
  /// A response that started but stopped progressing for this long is
  /// stalled -> re-request.
  util::Duration stream_timeout{util::milliseconds(1'200)};
  double stall_backoff = 1.4;
  /// Re-requests per object before escalating to a reset episode.
  int max_rerequests_per_object = 1;
  /// Reset episodes allowed per page load before giving up.
  int max_reset_episodes = 3;
  /// Stall-clock stretch after a reset episode (the transport stack backs
  /// off its timers after heavy loss, RFC 6298 §5.5-style).
  double reset_stall_multiplier = 6.0;
  /// Pause between the reset episode and the priority re-GET that follows
  /// it ("the client resends GET requests if a high priority object is not
  /// yet received").
  util::Duration post_reset_delay{util::milliseconds(1'300)};
  /// The remaining missing objects are re-requested only after this further
  /// delay (the browser waits for the priority object / network recovery).
  util::Duration post_reset_secondary_delay{util::milliseconds(1'200)};
  /// Spacing of those catch-up re-GETs.
  util::Duration post_reset_request_gap{util::milliseconds(30)};

  /// Firefox-like defaults: a large connection window and stream windows so
  /// flow control does not mask the multiplexing dynamics under test.
  [[nodiscard]] static BrowserConfig firefox_like();
};

class Browser {
 public:
  Browser(sim::Simulator& sim, const web::Site& site, web::RequestPlan plan,
          BrowserConfig config, tls::Session& session, sim::Rng rng);

  struct ObjectProgress {
    web::ObjectId object_id = 0;
    bool requested = false;
    bool response_started = false;  ///< headers or bytes seen for some copy
    bool complete = false;
    int rerequests = 0;
    std::size_t bytes_received = 0;      // best stream's count
    util::TimePoint first_request_time{};
    util::TimePoint complete_time{};
  };

  struct BrowserStats {
    std::uint64_t requests_sent = 0;       // initial GETs
    std::uint64_t rerequests_sent = 0;     // the paper's "retransmission requests"
    std::uint64_t reset_episodes = 0;
    std::uint64_t rst_streams_sent = 0;
    std::uint64_t pushes_accepted = 0;
    bool page_complete = false;
    bool broken = false;
    util::TimePoint page_complete_time{};
  };

  [[nodiscard]] const BrowserStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const ObjectProgress& progress(web::ObjectId id) const;
  [[nodiscard]] h2::Connection& connection() noexcept { return *conn_; }

  std::function<void()> on_page_complete;
  std::function<void(std::string reason)> on_broken;

 private:
  struct PendingStream {
    web::ObjectId object_id = 0;
    std::size_t bytes = 0;
  };

  void begin_plan();
  void schedule_item(std::size_t index, util::Duration delay);
  void issue_request(web::ObjectId object_id, bool is_rerequest);
  void arm_stall_timer(web::ObjectId object_id);
  void cancel_stall_timer(web::ObjectId object_id);
  void on_stall(web::ObjectId object_id);
  void reset_episode(web::ObjectId trigger_object);
  void on_object_complete(web::ObjectId object_id);
  void check_page_complete();
  void mark_broken(std::string reason);

  sim::Simulator& sim_;
  const web::Site& site_;
  web::RequestPlan plan_;
  BrowserConfig config_;
  tls::Session& session_;
  sim::Rng rng_;
  std::unique_ptr<h2::Connection> conn_;

  std::map<web::ObjectId, ObjectProgress> progress_;
  std::map<std::uint32_t, PendingStream> streams_;       // open response streams
  std::map<web::ObjectId, sim::EventId> stall_timers_;
  std::map<web::ObjectId, util::Duration> stall_current_;
  double patience_ = 1.0;  ///< stall-clock stretch, grows after resets
  std::size_t deferred_start_ = 0;  // index of first deferred item
  bool deferred_triggered_ = false;
  BrowserStats stats_;
};

}  // namespace h2priv::client
