#include "h2priv/h2/frame.hpp"

#include "h2priv/util/narrow.hpp"

namespace h2priv::h2 {

const char* to_string(FrameType t) noexcept {
  switch (t) {
    case FrameType::kData: return "DATA";
    case FrameType::kHeaders: return "HEADERS";
    case FrameType::kPriority: return "PRIORITY";
    case FrameType::kRstStream: return "RST_STREAM";
    case FrameType::kSettings: return "SETTINGS";
    case FrameType::kPushPromise: return "PUSH_PROMISE";
    case FrameType::kPing: return "PING";
    case FrameType::kGoAway: return "GOAWAY";
    case FrameType::kWindowUpdate: return "WINDOW_UPDATE";
    case FrameType::kContinuation: return "CONTINUATION";
  }
  return "?";
}

const char* to_string(ErrorCode e) noexcept {
  switch (e) {
    case ErrorCode::kNoError: return "NO_ERROR";
    case ErrorCode::kProtocolError: return "PROTOCOL_ERROR";
    case ErrorCode::kInternalError: return "INTERNAL_ERROR";
    case ErrorCode::kFlowControlError: return "FLOW_CONTROL_ERROR";
    case ErrorCode::kSettingsTimeout: return "SETTINGS_TIMEOUT";
    case ErrorCode::kStreamClosed: return "STREAM_CLOSED";
    case ErrorCode::kFrameSizeError: return "FRAME_SIZE_ERROR";
    case ErrorCode::kRefusedStream: return "REFUSED_STREAM";
    case ErrorCode::kCancel: return "CANCEL";
    case ErrorCode::kCompressionError: return "COMPRESSION_ERROR";
    case ErrorCode::kConnectError: return "CONNECT_ERROR";
    case ErrorCode::kEnhanceYourCalm: return "ENHANCE_YOUR_CALM";
    case ErrorCode::kInadequateSecurity: return "INADEQUATE_SECURITY";
    case ErrorCode::kHttp11Required: return "HTTP_1_1_REQUIRED";
  }
  return "?";
}

namespace {

void write_header(util::ByteWriter& w, std::uint32_t length, FrameType type,
                  std::uint8_t flags, std::uint32_t stream_id) {
  // Every encoder computes its exact payload length before writing, so one
  // reservation here sizes the whole frame — no growth mid-encode.
  w.reserve(kFrameHeaderBytes + length);
  w.u24(length);
  w.u8(static_cast<std::uint8_t>(type));
  w.u8(flags);
  w.u32(stream_id & kMaxStreamId);
}

FrameHeader read_header(util::ByteReader& r) {
  FrameHeader h;
  h.length = r.u24();
  const std::uint8_t raw_type = r.u8();
  if (raw_type > 0x9) throw FrameError("unknown frame type " + std::to_string(raw_type));
  h.type = static_cast<FrameType>(raw_type);
  h.flags = r.u8();
  h.stream_id = r.u32() & kMaxStreamId;
  return h;
}

}  // namespace

void encode_data_into(util::ByteWriter& w, std::uint32_t stream_id, util::BytesView data,
                      bool end_stream, std::uint8_t pad_length) {
  std::uint8_t flags = end_stream ? kFlagEndStream : 0;
  std::uint32_t length = util::narrow<std::uint32_t>(data.size());
  if (pad_length > 0) {
    flags |= kFlagPadded;
    length += 1u + pad_length;
  }
  write_header(w, length, FrameType::kData, flags, stream_id);
  if (pad_length > 0) w.u8(pad_length);
  w.bytes(data);
  if (pad_length > 0) w.fill(pad_length, 0);
}

namespace {

struct Encoder {
  util::ByteWriter& w;

  void operator()(const DataFrame& f) {
    encode_data_into(w, f.stream_id, f.data, f.end_stream, f.pad_length);
  }

  void operator()(const HeadersFrame& f) {
    std::uint8_t flags = 0;
    if (f.end_stream) flags |= kFlagEndStream;
    if (f.end_headers) flags |= kFlagEndHeaders;
    std::uint32_t length = util::narrow<std::uint32_t>(f.header_block.size());
    if (f.has_priority) {
      flags |= kFlagPriority;
      length += 5;
    }
    write_header(w, length, FrameType::kHeaders, flags, f.stream_id);
    if (f.has_priority) {
      w.u32((f.exclusive ? 0x80000000u : 0u) | (f.stream_dependency & kMaxStreamId));
      w.u8(static_cast<std::uint8_t>(f.weight - 1));
    }
    w.bytes(f.header_block);
  }

  void operator()(const PriorityFrame& f) {
    write_header(w, 5, FrameType::kPriority, 0, f.stream_id);
    w.u32((f.exclusive ? 0x80000000u : 0u) | (f.stream_dependency & kMaxStreamId));
    w.u8(static_cast<std::uint8_t>(f.weight - 1));
  }

  void operator()(const RstStreamFrame& f) {
    write_header(w, 4, FrameType::kRstStream, 0, f.stream_id);
    w.u32(static_cast<std::uint32_t>(f.error));
  }

  void operator()(const SettingsFrame& f) {
    write_header(w, util::narrow<std::uint32_t>(f.settings.size() * 6),
                 FrameType::kSettings,
                 f.ack ? kFlagAck : 0, 0);
    for (const Setting& s : f.settings) {
      w.u16(s.id);
      w.u32(s.value);
    }
  }

  void operator()(const PushPromiseFrame& f) {
    const std::uint32_t length = util::narrow<std::uint32_t>(4 + f.header_block.size());
    write_header(w, length, FrameType::kPushPromise, f.end_headers ? kFlagEndHeaders : 0,
                 f.stream_id);
    w.u32(f.promised_stream_id & kMaxStreamId);
    w.bytes(f.header_block);
  }

  void operator()(const PingFrame& f) {
    write_header(w, 8, FrameType::kPing, f.ack ? kFlagAck : 0, 0);
    w.bytes(util::BytesView(f.opaque.data(), f.opaque.size()));
  }

  void operator()(const GoAwayFrame& f) {
    write_header(w, util::narrow<std::uint32_t>(8 + f.debug_data.size()),
                 FrameType::kGoAway, 0,
                 0);
    w.u32(f.last_stream_id & kMaxStreamId);
    w.u32(static_cast<std::uint32_t>(f.error));
    w.bytes(f.debug_data);
  }

  void operator()(const WindowUpdateFrame& f) {
    write_header(w, 4, FrameType::kWindowUpdate, 0, f.stream_id);
    w.u32(f.increment & kMaxStreamId);
  }

  void operator()(const ContinuationFrame& f) {
    write_header(w, util::narrow<std::uint32_t>(f.header_block.size()),
                 FrameType::kContinuation,
                 f.end_headers ? kFlagEndHeaders : 0, f.stream_id);
    w.bytes(f.header_block);
  }
};

Frame decode_payload(const FrameHeader& h, util::ByteReader& r) {
  switch (h.type) {
    case FrameType::kData: {
      DataFrame f;
      f.stream_id = h.stream_id;
      f.end_stream = (h.flags & kFlagEndStream) != 0;
      std::size_t data_len = h.length;
      if (h.flags & kFlagPadded) {
        f.pad_length = r.u8();
        if (f.pad_length + 1u > h.length) throw FrameError("DATA padding exceeds length");
        data_len = h.length - 1 - f.pad_length;
      }
      const auto body = r.bytes(data_len);
      f.data.assign(body.begin(), body.end());
      if (h.flags & kFlagPadded) r.skip(f.pad_length);
      return f;
    }
    case FrameType::kHeaders: {
      HeadersFrame f;
      f.stream_id = h.stream_id;
      f.end_stream = (h.flags & kFlagEndStream) != 0;
      f.end_headers = (h.flags & kFlagEndHeaders) != 0;
      std::size_t block_len = h.length;
      std::uint8_t pad = 0;
      if (h.flags & kFlagPadded) {
        pad = r.u8();
        block_len -= 1u + pad;
      }
      if (h.flags & kFlagPriority) {
        f.has_priority = true;
        const std::uint32_t dep = r.u32();
        f.exclusive = (dep & 0x80000000u) != 0;
        f.stream_dependency = dep & kMaxStreamId;
        f.weight = static_cast<std::uint8_t>(r.u8() + 1);
        block_len -= 5;
      }
      const auto body = r.bytes(block_len);
      f.header_block.assign(body.begin(), body.end());
      r.skip(pad);
      return f;
    }
    case FrameType::kPriority: {
      if (h.length != 5) throw FrameError("PRIORITY length must be 5");
      PriorityFrame f;
      f.stream_id = h.stream_id;
      const std::uint32_t dep = r.u32();
      f.exclusive = (dep & 0x80000000u) != 0;
      f.stream_dependency = dep & kMaxStreamId;
      f.weight = static_cast<std::uint8_t>(r.u8() + 1);
      return f;
    }
    case FrameType::kRstStream: {
      if (h.length != 4) throw FrameError("RST_STREAM length must be 4");
      RstStreamFrame f;
      f.stream_id = h.stream_id;
      f.error = static_cast<ErrorCode>(r.u32());
      return f;
    }
    case FrameType::kSettings: {
      if (h.stream_id != 0) throw FrameError("SETTINGS on non-zero stream");
      if (h.length % 6 != 0) throw FrameError("SETTINGS length not a multiple of 6");
      SettingsFrame f;
      f.ack = (h.flags & kFlagAck) != 0;
      if (f.ack && h.length != 0) throw FrameError("SETTINGS ACK with payload");
      for (std::size_t i = 0; i < h.length / 6; ++i) {
        Setting s;
        s.id = r.u16();
        s.value = r.u32();
        f.settings.push_back(s);
      }
      return f;
    }
    case FrameType::kPushPromise: {
      PushPromiseFrame f;
      f.stream_id = h.stream_id;
      f.end_headers = (h.flags & kFlagEndHeaders) != 0;
      f.promised_stream_id = r.u32() & kMaxStreamId;
      const auto body = r.bytes(h.length - 4);
      f.header_block.assign(body.begin(), body.end());
      return f;
    }
    case FrameType::kPing: {
      if (h.length != 8) throw FrameError("PING length must be 8");
      PingFrame f;
      f.ack = (h.flags & kFlagAck) != 0;
      const auto body = r.bytes(8);
      std::copy(body.begin(), body.end(), f.opaque.begin());
      return f;
    }
    case FrameType::kGoAway: {
      if (h.length < 8) throw FrameError("GOAWAY too short");
      GoAwayFrame f;
      f.last_stream_id = r.u32() & kMaxStreamId;
      f.error = static_cast<ErrorCode>(r.u32());
      const auto body = r.bytes(h.length - 8);
      f.debug_data.assign(body.begin(), body.end());
      return f;
    }
    case FrameType::kWindowUpdate: {
      if (h.length != 4) throw FrameError("WINDOW_UPDATE length must be 4");
      WindowUpdateFrame f;
      f.stream_id = h.stream_id;
      f.increment = r.u32() & kMaxStreamId;
      if (f.increment == 0) throw FrameError("WINDOW_UPDATE with zero increment");
      return f;
    }
    case FrameType::kContinuation: {
      ContinuationFrame f;
      f.stream_id = h.stream_id;
      f.end_headers = (h.flags & kFlagEndHeaders) != 0;
      const auto body = r.bytes(h.length);
      f.header_block.assign(body.begin(), body.end());
      return f;
    }
  }
  throw FrameError("unreachable frame type");
}

}  // namespace

FrameType frame_type(const Frame& f) noexcept {
  return std::visit(
      [](const auto& v) -> FrameType {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, DataFrame>) return FrameType::kData;
        else if constexpr (std::is_same_v<T, HeadersFrame>) return FrameType::kHeaders;
        else if constexpr (std::is_same_v<T, PriorityFrame>) return FrameType::kPriority;
        else if constexpr (std::is_same_v<T,
                           RstStreamFrame>) return FrameType::kRstStream;
        else if constexpr (std::is_same_v<T, SettingsFrame>) return FrameType::kSettings;
        else if constexpr (std::is_same_v<T,
                           PushPromiseFrame>) return FrameType::kPushPromise;
        else if constexpr (std::is_same_v<T, PingFrame>) return FrameType::kPing;
        else if constexpr (std::is_same_v<T, GoAwayFrame>) return FrameType::kGoAway;
        else if constexpr (std::is_same_v<T,
                           WindowUpdateFrame>) return FrameType::kWindowUpdate;
        else return FrameType::kContinuation;
      },
      f);
}

std::uint32_t frame_stream_id(const Frame& f) noexcept {
  return std::visit(
      [](const auto& v) -> std::uint32_t {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, SettingsFrame> || std::is_same_v<T, PingFrame> ||
                      std::is_same_v<T, GoAwayFrame>) {
          return 0;
        } else {
          return v.stream_id;
        }
      },
      f);
}

void encode_frame_into(util::ByteWriter& w, const Frame& f) {
  std::visit(Encoder{w}, f);
}

util::Bytes encode_frame(const Frame& f) {
  util::ByteWriter w;
  encode_frame_into(w, f);
  return w.take();
}

std::optional<Frame> FrameDecoder::next() {
  if (buf_.size() < kFrameHeaderBytes) return std::nullopt;
  util::ByteReader header_reader(buf_.front(kFrameHeaderBytes));
  const FrameHeader h = read_header(header_reader);
  if (h.length > max_frame_size_) {
    throw FrameError("frame length " + std::to_string(h.length) +
                     " exceeds max frame size");
  }
  if (buf_.size() < kFrameHeaderBytes + h.length) return std::nullopt;
  const util::BytesView whole = buf_.front(kFrameHeaderBytes + h.length);
  util::ByteReader payload_reader(whole.subspan(kFrameHeaderBytes));
  Frame frame = decode_payload(h, payload_reader);
  if (!payload_reader.done()) throw FrameError("trailing bytes in frame payload");
  buf_.pop(kFrameHeaderBytes + h.length);
  return frame;
}

}  // namespace h2priv::h2
