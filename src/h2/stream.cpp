#include "h2priv/h2/stream.hpp"

#include <stdexcept>

namespace h2priv::h2 {

const char* to_string(StreamState s) noexcept {
  switch (s) {
    case StreamState::kIdle: return "idle";
    case StreamState::kReservedLocal: return "reserved(local)";
    case StreamState::kReservedRemote: return "reserved(remote)";
    case StreamState::kOpen: return "open";
    case StreamState::kHalfClosedLocal: return "half-closed(local)";
    case StreamState::kHalfClosedRemote: return "half-closed(remote)";
    case StreamState::kClosed: return "closed";
  }
  return "?";
}

void Stream::open_local(bool end_stream) {
  switch (state) {
    case StreamState::kIdle:
      state = end_stream ? StreamState::kHalfClosedLocal : StreamState::kOpen;
      break;
    case StreamState::kReservedLocal:
      state = end_stream ? StreamState::kClosed : StreamState::kHalfClosedRemote;
      break;
    default:
      throw std::logic_error("HEADERS sent in state " + std::string(to_string(state)));
  }
  if (end_stream) local_end_sent = true;
}

void Stream::open_remote(bool end_stream) {
  switch (state) {
    case StreamState::kIdle:
      state = end_stream ? StreamState::kHalfClosedRemote : StreamState::kOpen;
      break;
    case StreamState::kReservedRemote:
      state = end_stream ? StreamState::kClosed : StreamState::kHalfClosedLocal;
      break;
    default:
      throw std::logic_error("HEADERS received in state " +
                             std::string(to_string(state)));
  }
  if (end_stream) remote_end_seen = true;
}

void Stream::end_local() {
  local_end_sent = true;
  if (state == StreamState::kOpen) {
    state = StreamState::kHalfClosedLocal;
  } else if (state == StreamState::kHalfClosedRemote) {
    state = StreamState::kClosed;
  } else {
    throw std::logic_error("END_STREAM sent in state " + std::string(to_string(state)));
  }
}

void Stream::end_remote() {
  remote_end_seen = true;
  if (state == StreamState::kOpen) {
    state = StreamState::kHalfClosedRemote;
  } else if (state == StreamState::kHalfClosedLocal) {
    state = StreamState::kClosed;
  } else {
    throw std::logic_error("END_STREAM received in state " +
                           std::string(to_string(state)));
  }
}

}  // namespace h2priv::h2
