// HTTP/2 connection (RFC 7540): preface, SETTINGS exchange, HPACK-coded
// HEADERS, DATA with connection- and stream-level flow control, RST_STREAM,
// PING, GOAWAY, WINDOW_UPDATE and server push.
//
// The connection is transport-agnostic: it emits wire bytes through a
// ByteSink and is fed received bytes via on_bytes(). The sink returns the
// byte range the write occupies in the underlying TCP stream, which the
// server uses for ground-truth annotation of which object each DATA frame
// carried (the simulator-side oracle the adversary never sees).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>

#include "h2priv/h2/frame.hpp"
#include "h2priv/h2/settings.hpp"
#include "h2priv/h2/stream.hpp"
#include "h2priv/hpack/codec.hpp"

namespace h2priv::h2 {

enum class Role : std::uint8_t { kClient, kServer };

/// Byte range a write occupies in the transport's stream (half-open).
struct WireSpan {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  [[nodiscard]] std::uint64_t size() const noexcept { return end - begin; }
  [[nodiscard]] bool empty() const noexcept { return end == begin; }
};

struct ConnectionConfig {
  Settings local_settings{};
  /// Extra connection-level receive window granted immediately after the
  /// preface (browsers grant several MB; 0 keeps the RFC default 64 KiB).
  std::uint32_t connection_window_extra = 0;
};

class Connection {
 public:
  using ByteSink = std::function<WireSpan(util::BytesView)>;

  Connection(Role role, ConnectionConfig config, ByteSink out);

  /// Sends the preface (client), our SETTINGS, and any initial window grant.
  void start();

  /// Feeds transport bytes (decrypted TLS application data).
  void on_bytes(util::BytesView bytes);

  // --- client API ----------------------------------------------------------
  /// Opens a new stream with a GET-style header block; returns the stream id.
  std::uint32_t send_request(const hpack::HeaderList& headers,
                             std::optional<PriorityFrame> priority = std::nullopt);

  // --- server API ----------------------------------------------------------
  void send_response_headers(std::uint32_t stream_id, const hpack::HeaderList& headers,
                             bool end_stream = false);
  /// Queues body bytes on the stream and transmits as much as flow control
  /// allows; the rest drains on WINDOW_UPDATEs. end_stream marks the final
  /// write for this stream.
  void send_data(std::uint32_t stream_id, util::BytesView data, bool end_stream);
  /// Reserves a promised stream (server push); returns the promised id.
  std::uint32_t push_promise(std::uint32_t parent_stream_id,
                             const hpack::HeaderList& request_headers);

  // --- both sides ----------------------------------------------------------
  void rst_stream(std::uint32_t stream_id, ErrorCode error);
  void ping();
  void goaway(ErrorCode error);

  [[nodiscard]] bool stream_exists(std::uint32_t id) const {
    return streams_.contains(id);
  }
  [[nodiscard]] const Stream& stream(std::uint32_t id) const;
  [[nodiscard]] std::size_t open_stream_count() const noexcept;
  /// Streams with body bytes still queued behind flow control.
  [[nodiscard]] std::size_t blocked_stream_count() const noexcept;
  [[nodiscard]] std::int64_t connection_send_window() const noexcept {
    return conn_send_window_;
  }
  [[nodiscard]] const Settings& peer_settings() const noexcept { return peer_settings_; }
  [[nodiscard]] const Settings& local_settings() const noexcept {
    return config_.local_settings;
  }
  [[nodiscard]] bool peer_settings_received() const noexcept {
    return peer_settings_received_;
  }

  struct H2Stats {
    std::uint64_t frames_sent = 0;
    std::uint64_t frames_received = 0;
    std::uint64_t data_frames_sent = 0;
    std::uint64_t data_bytes_sent = 0;
    std::uint64_t data_bytes_received = 0;
    std::uint64_t rst_streams_sent = 0;
    std::uint64_t rst_streams_received = 0;
    std::uint64_t pushes_sent = 0;
  };
  [[nodiscard]] const H2Stats& stats() const noexcept { return stats_; }

  // --- callbacks ------------------------------------------------------------
  /// Server: a request header block arrived (end_stream: no body follows).
  std::function<void(std::uint32_t, const hpack::HeaderList&, bool)> on_request;
  /// Client: response headers arrived.
  std::function<void(std::uint32_t, const hpack::HeaderList&)> on_response_headers;
  /// Body bytes arrived (end = END_STREAM seen).
  std::function<void(std::uint32_t, util::BytesView, bool end)> on_data;
  std::function<void(std::uint32_t, ErrorCode)> on_rst_stream;
  std::function<void(ErrorCode)> on_goaway;
  /// Client: server push promised a resource on `promised` for `parent`.
  std::function<void(std::uint32_t parent, std::uint32_t promised,
                     const hpack::HeaderList&)>
      on_push_promise;
  /// Every frame actually written, with the transport range it landed in.
  std::function<void(std::uint32_t stream_id, FrameType, WireSpan)> on_frame_sent;
  /// A stream's queued bytes became fully flushed (used by the scheduler).
  std::function<void(std::uint32_t stream_id)> on_stream_drained;
  /// Defense hook (RFC 7540 §6.1): called once per DATA frame with the body
  /// length about to be written; returns the pad length (0 = no PADDED
  /// flag). Pad bytes consume flow-control window like body bytes, so the
  /// provider's answer is clamped to the window headroom. Null = unpadded
  /// frames, byte-identical to the pre-defense wire.
  std::function<std::uint8_t(std::size_t payload_len)> data_pad_provider;

  /// Client-advertised stream priority weights (PRIORITY frames / HEADERS
  /// priority fields); the server's weighted scheduler reads these.
  [[nodiscard]] std::uint8_t stream_weight(std::uint32_t stream_id) const;

 private:
  WireSpan write_frame(const Frame& f);
  void send_header_block(std::uint32_t stream_id, util::Bytes block, bool end_stream,
                         std::optional<PriorityFrame> priority);
  void handle_frame(Frame&& f);
  void dispatch_headers(std::uint32_t stream_id, util::Bytes block, bool end_stream);
  Stream& require_stream(std::uint32_t id);
  Stream& ensure_remote_stream(std::uint32_t id);
  void flush_stream_pending(Stream& s);
  WireSpan write_data(std::uint32_t stream_id, util::BytesView payload, bool end_stream,
                      std::uint8_t pad_length);
  void drain_blocked_streams();
  void grant_receive_credit(Stream* s, std::size_t consumed);

  Role role_;
  ConnectionConfig config_;
  ByteSink out_;
  util::ByteWriter frame_scratch_;  // reused across write_frame calls
  FrameDecoder decoder_;
  hpack::Encoder hpack_encoder_;
  hpack::Decoder hpack_decoder_;
  Settings peer_settings_{};
  bool peer_settings_received_ = false;
  bool started_ = false;
  bool goaway_sent_ = false;
  bool goaway_received_ = false;

  std::map<std::uint32_t, Stream> streams_;
  std::uint32_t next_stream_id_;          // odd for client, even for push
  std::uint32_t next_promised_id_ = 2;
  std::uint32_t highest_remote_stream_ = 0;
  std::int64_t conn_send_window_ = 65'535;
  std::int64_t conn_recv_consumed_ = 0;
  std::int64_t conn_recv_window_ = 65'535;
  std::size_t preface_remaining_;  // server: preface bytes still expected
  std::uint32_t rr_cursor_ = 0;    // round-robin position for blocked drains
  // CONTINUATION reassembly state (one header block may span frames).
  std::uint32_t continuation_stream_ = 0;
  util::Bytes continuation_block_;
  bool continuation_end_stream_ = false;
  std::map<std::uint32_t, std::uint8_t> stream_weights_;
  H2Stats stats_;
};

}  // namespace h2priv::h2
