// Per-stream state (RFC 7540 §5.1) plus flow-control windows and the
// pending-body queue used when flow control blocks a DATA write.
#pragma once

#include <cstdint>

#include "h2priv/util/byte_queue.hpp"
#include "h2priv/util/bytes.hpp"

namespace h2priv::h2 {

enum class StreamState : std::uint8_t {
  kIdle,
  kReservedLocal,
  kReservedRemote,
  kOpen,
  kHalfClosedLocal,
  kHalfClosedRemote,
  kClosed,
};

[[nodiscard]] const char* to_string(StreamState s) noexcept;

struct Stream {
  std::uint32_t id = 0;
  StreamState state = StreamState::kIdle;

  // Flow control (send = credit for our DATA; recv = credit we granted).
  std::int64_t send_window = 65'535;
  std::int64_t recv_window = 65'535;
  std::int64_t recv_consumed = 0;  // bytes to return via WINDOW_UPDATE

  // Body bytes accepted by send_data but still blocked on flow control.
  // Contiguous, so flush can encode DATA frames straight from a view.
  util::ByteQueue pending;
  bool pending_end_stream = false;
  bool local_end_sent = false;
  bool remote_end_seen = false;

  std::uint64_t data_bytes_sent = 0;
  std::uint64_t data_bytes_received = 0;

  [[nodiscard]] bool can_send_data() const noexcept {
    return state == StreamState::kOpen || state == StreamState::kHalfClosedRemote;
  }
  [[nodiscard]] bool can_receive_data() const noexcept {
    return state == StreamState::kOpen || state == StreamState::kHalfClosedLocal;
  }

  // State transitions; throw std::logic_error on illegal ones.
  void open_local(bool end_stream);   // we sent HEADERS
  void open_remote(bool end_stream);  // peer sent HEADERS
  void end_local();                   // we sent END_STREAM
  void end_remote();                  // peer sent END_STREAM
  void reset() noexcept { state = StreamState::kClosed; pending.clear(); }
};

}  // namespace h2priv::h2
