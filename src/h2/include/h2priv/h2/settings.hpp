// HTTP/2 SETTINGS parameters (RFC 7540 §6.5.2).
#pragma once

#include <cstdint>
#include <vector>

#include "h2priv/h2/frame.hpp"

namespace h2priv::h2 {

enum class SettingId : std::uint16_t {
  kHeaderTableSize = 0x1,
  kEnablePush = 0x2,
  kMaxConcurrentStreams = 0x3,
  kInitialWindowSize = 0x4,
  kMaxFrameSize = 0x5,
  kMaxHeaderListSize = 0x6,
};

struct Settings {
  std::uint32_t header_table_size = 4096;
  bool enable_push = true;
  std::uint32_t max_concurrent_streams = 100;
  std::uint32_t initial_window_size = 65'535;
  std::uint32_t max_frame_size = kDefaultMaxFrameSize;
  std::uint32_t max_header_list_size = 16'384;

  [[nodiscard]] std::vector<Setting> to_wire() const {
    return {
        {static_cast<std::uint16_t>(SettingId::kHeaderTableSize), header_table_size},
        {static_cast<std::uint16_t>(SettingId::kEnablePush), enable_push ? 1u : 0u},
        {static_cast<std::uint16_t>(SettingId::kMaxConcurrentStreams),
            max_concurrent_streams},
        {static_cast<std::uint16_t>(SettingId::kInitialWindowSize), initial_window_size},
        {static_cast<std::uint16_t>(SettingId::kMaxFrameSize), max_frame_size},
        {static_cast<std::uint16_t>(SettingId::kMaxHeaderListSize), max_header_list_size},
    };
  }

  /// Applies wire settings on top of the current values. Throws FrameError
  /// on out-of-range values (RFC 7540 §6.5.2 validity rules).
  void apply(const std::vector<Setting>& settings);
};

}  // namespace h2priv::h2
