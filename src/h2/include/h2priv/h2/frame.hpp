// HTTP/2 frame layer (RFC 7540 §4, §6): the 9-byte frame header, typed
// frame structs, and an incremental decoder that reassembles frames from an
// arbitrary byte-stream chunking.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "h2priv/util/byte_queue.hpp"
#include "h2priv/util/bytes.hpp"

namespace h2priv::h2 {

inline constexpr std::size_t kFrameHeaderBytes = 9;
inline constexpr std::uint32_t kDefaultMaxFrameSize = 16'384;
inline constexpr std::uint32_t kMaxStreamId = 0x7fffffff;

/// The client connection preface (RFC 7540 §3.5).
inline constexpr std::string_view kConnectionPreface = "PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n";

enum class FrameType : std::uint8_t {
  kData = 0x0,
  kHeaders = 0x1,
  kPriority = 0x2,
  kRstStream = 0x3,
  kSettings = 0x4,
  kPushPromise = 0x5,
  kPing = 0x6,
  kGoAway = 0x7,
  kWindowUpdate = 0x8,
  kContinuation = 0x9,
};

[[nodiscard]] const char* to_string(FrameType t) noexcept;

// Frame flags (per-type meaning, RFC 7540 §6).
inline constexpr std::uint8_t kFlagEndStream = 0x01;   // DATA, HEADERS
inline constexpr std::uint8_t kFlagAck = 0x01;         // SETTINGS, PING
inline constexpr std::uint8_t kFlagEndHeaders = 0x04;  // HEADERS, CONTINUATION
inline constexpr std::uint8_t kFlagPadded = 0x08;      // DATA, HEADERS
inline constexpr std::uint8_t kFlagPriority = 0x20;    // HEADERS

enum class ErrorCode : std::uint32_t {
  kNoError = 0x0,
  kProtocolError = 0x1,
  kInternalError = 0x2,
  kFlowControlError = 0x3,
  kSettingsTimeout = 0x4,
  kStreamClosed = 0x5,
  kFrameSizeError = 0x6,
  kRefusedStream = 0x7,
  kCancel = 0x8,
  kCompressionError = 0x9,
  kConnectError = 0xa,
  kEnhanceYourCalm = 0xb,
  kInadequateSecurity = 0xc,
  kHttp11Required = 0xd,
};

[[nodiscard]] const char* to_string(ErrorCode e) noexcept;

class FrameError : public std::runtime_error {
 public:
  explicit FrameError(const std::string& what) : std::runtime_error(what) {}
};

struct FrameHeader {
  std::uint32_t length = 0;  // 24-bit payload length
  FrameType type = FrameType::kData;
  std::uint8_t flags = 0;
  std::uint32_t stream_id = 0;  // 31-bit
};

struct DataFrame {
  std::uint32_t stream_id = 0;
  util::Bytes data;
  bool end_stream = false;
  std::uint8_t pad_length = 0;  ///< padding bytes appended on the wire
};

struct HeadersFrame {
  std::uint32_t stream_id = 0;
  util::Bytes header_block;  // HPACK-encoded fragment
  bool end_stream = false;
  bool end_headers = true;
  // Optional priority (kFlagPriority).
  bool has_priority = false;
  std::uint32_t stream_dependency = 0;
  bool exclusive = false;
  std::uint8_t weight = 16;  // wire value + 1
};

struct PriorityFrame {
  std::uint32_t stream_id = 0;
  std::uint32_t stream_dependency = 0;
  bool exclusive = false;
  std::uint8_t weight = 16;
};

struct RstStreamFrame {
  std::uint32_t stream_id = 0;
  ErrorCode error = ErrorCode::kNoError;
};

struct Setting {
  std::uint16_t id = 0;
  std::uint32_t value = 0;
};

struct SettingsFrame {
  bool ack = false;
  std::vector<Setting> settings;
};

struct PushPromiseFrame {
  std::uint32_t stream_id = 0;
  std::uint32_t promised_stream_id = 0;
  util::Bytes header_block;
  bool end_headers = true;
};

struct PingFrame {
  bool ack = false;
  std::array<std::uint8_t, 8> opaque{};
};

struct GoAwayFrame {
  std::uint32_t last_stream_id = 0;
  ErrorCode error = ErrorCode::kNoError;
  util::Bytes debug_data;
};

struct WindowUpdateFrame {
  std::uint32_t stream_id = 0;  // 0 = connection window
  std::uint32_t increment = 0;
};

struct ContinuationFrame {
  std::uint32_t stream_id = 0;
  util::Bytes header_block;
  bool end_headers = true;
};

using Frame = std::variant<DataFrame, HeadersFrame, PriorityFrame, RstStreamFrame,
                           SettingsFrame, PushPromiseFrame, PingFrame, GoAwayFrame,
                           WindowUpdateFrame, ContinuationFrame>;

[[nodiscard]] FrameType frame_type(const Frame& f) noexcept;
[[nodiscard]] std::uint32_t frame_stream_id(const Frame& f) noexcept;

/// Encodes a frame (header + payload) into wire bytes.
[[nodiscard]] util::Bytes encode_frame(const Frame& f);

/// Encodes into a caller-owned writer (reserves the exact frame size).
/// Lets h2::Connection reuse one scratch buffer for every frame it writes.
void encode_frame_into(util::ByteWriter& w, const Frame& f);

/// Encodes a DATA frame straight from a borrowed payload view — the hot
/// body path never materialises a DataFrame (whose `data` member owns a
/// copy). Bit-identical to encoding the equivalent DataFrame.
void encode_data_into(util::ByteWriter& w, std::uint32_t stream_id, util::BytesView data,
                      bool end_stream, std::uint8_t pad_length);

/// Incremental decoder: feed() arbitrary chunks, poll next() for frames.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::uint32_t max_frame_size = kDefaultMaxFrameSize) noexcept
      : max_frame_size_(max_frame_size) {}

  void feed(util::BytesView bytes) { buf_.append(bytes); }

  /// Returns the next complete frame, or nullopt if more bytes are needed.
  /// Throws FrameError on malformed frames.
  [[nodiscard]] std::optional<Frame> next();

  void set_max_frame_size(std::uint32_t v) noexcept { max_frame_size_ = v; }
  [[nodiscard]] std::size_t buffered() const noexcept { return buf_.size(); }

 private:
  std::uint32_t max_frame_size_;
  util::ByteQueue buf_;  // contiguous: consuming a frame is a pop, not an erase

};

}  // namespace h2priv::h2
