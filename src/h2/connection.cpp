#include "h2priv/h2/connection.hpp"

#include <algorithm>
#include <stdexcept>

#include "h2priv/obs/metrics.hpp"
#include "h2priv/util/narrow.hpp"

namespace h2priv::h2 {

void Settings::apply(const std::vector<Setting>& settings) {
  for (const Setting& s : settings) {
    switch (static_cast<SettingId>(s.id)) {
      case SettingId::kHeaderTableSize:
        header_table_size = s.value;
        break;
      case SettingId::kEnablePush:
        if (s.value > 1) throw FrameError("ENABLE_PUSH must be 0 or 1");
        enable_push = s.value == 1;
        break;
      case SettingId::kMaxConcurrentStreams:
        max_concurrent_streams = s.value;
        break;
      case SettingId::kInitialWindowSize:
        if (s.value > static_cast<std::uint32_t>(kMaxStreamId)) {
          throw FrameError("INITIAL_WINDOW_SIZE above 2^31-1");
        }
        initial_window_size = s.value;
        break;
      case SettingId::kMaxFrameSize:
        if (s.value < 16'384 || s.value > 16'777'215) {
          throw FrameError("MAX_FRAME_SIZE out of range");
        }
        max_frame_size = s.value;
        break;
      case SettingId::kMaxHeaderListSize:
        max_header_list_size = s.value;
        break;
      default:
        break;  // unknown settings are ignored (RFC 7540 §6.5.2)
    }
  }
}

Connection::Connection(Role role, ConnectionConfig config, ByteSink out)
    : role_(role),
      config_(config),
      out_(std::move(out)),
      hpack_encoder_(config.local_settings.header_table_size),
      hpack_decoder_(config.local_settings.header_table_size),
      next_stream_id_(role == Role::kClient ? 1 : 2),
      preface_remaining_(role == Role::kServer ? kConnectionPreface.size() : 0) {
  if (!out_) throw std::invalid_argument("h2::Connection: null byte sink");
}

void Connection::start() {
  if (started_) throw std::logic_error("h2::Connection::start called twice");
  started_ = true;
  if (role_ == Role::kClient) {
    out_(util::BytesView(reinterpret_cast<const std::uint8_t*>(kConnectionPreface.data()),
                         kConnectionPreface.size()));
  }
  SettingsFrame sf;
  sf.settings = config_.local_settings.to_wire();
  write_frame(sf);
  if (config_.connection_window_extra > 0) {
    conn_recv_window_ += config_.connection_window_extra;
    write_frame(WindowUpdateFrame{0, config_.connection_window_extra});
  }
}

WireSpan Connection::write_data(std::uint32_t stream_id, util::BytesView payload,
                                bool end_stream, std::uint8_t pad_length) {
  frame_scratch_.clear();
  encode_data_into(frame_scratch_, stream_id, payload, end_stream, pad_length);
  const WireSpan span = out_(frame_scratch_.view());
  ++stats_.frames_sent;
  obs::count(obs::Counter::kH2DataSent);
  obs::count(obs::Counter::kH2DataBytesSent, payload.size());
  if (pad_length > 0) obs::count(obs::Counter::kH2PadBytesSent, pad_length);
  if (on_frame_sent) on_frame_sent(stream_id, FrameType::kData, span);
  return span;
}

WireSpan Connection::write_frame(const Frame& f) {
  frame_scratch_.clear();
  encode_frame_into(frame_scratch_, f);
  const WireSpan span = out_(frame_scratch_.view());
  ++stats_.frames_sent;
  obs::count(obs::h2_frame_sent_counter(static_cast<unsigned>(frame_type(f))));
  if (on_frame_sent) on_frame_sent(frame_stream_id(f), frame_type(f), span);
  return span;
}

const Stream& Connection::stream(std::uint32_t id) const {
  const auto it = streams_.find(id);
  if (it == streams_.end()) throw std::out_of_range("h2: unknown stream " +
      std::to_string(id));
  return it->second;
}

Stream& Connection::require_stream(std::uint32_t id) {
  const auto it = streams_.find(id);
  if (it == streams_.end()) throw std::out_of_range("h2: unknown stream " +
      std::to_string(id));
  return it->second;
}

std::size_t Connection::open_stream_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(streams_.begin(), streams_.end(), [](const auto& kv) {
        return kv.second.state != StreamState::kClosed &&
               kv.second.state != StreamState::kIdle;
      }));
}

std::size_t Connection::blocked_stream_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(streams_.begin(), streams_.end(),
                    [](const auto& kv) { return !kv.second.pending.empty(); }));
}

std::uint32_t Connection::send_request(const hpack::HeaderList& headers,
                                       std::optional<PriorityFrame> priority) {
  if (role_ != Role::kClient) throw std::logic_error("send_request on server connection");
  const std::uint32_t id = next_stream_id_;
  next_stream_id_ += 2;

  Stream s;
  s.id = id;
  s.send_window = peer_settings_.initial_window_size;
  s.recv_window = config_.local_settings.initial_window_size;
  s.open_local(/*end_stream=*/true);  // GETs carry no body
  streams_.emplace(id, std::move(s));

  if (priority) stream_weights_[id] = priority->weight;
  send_header_block(id, hpack_encoder_.encode(headers), /*end_stream=*/true, priority);
  return id;
}

void Connection::send_response_headers(std::uint32_t stream_id,
                                       const hpack::HeaderList& headers,
                                       bool end_stream) {
  Stream& s = require_stream(stream_id);
  if (!s.can_send_data() && s.state != StreamState::kReservedLocal) {
    throw std::logic_error("send_response_headers in state " +
                           std::string(to_string(s.state)));
  }
  if (s.state == StreamState::kReservedLocal) {
    s.open_local(end_stream);
  } else if (end_stream) {
    s.end_local();
  }
  send_header_block(stream_id, hpack_encoder_.encode(headers), end_stream, std::nullopt);
}

void Connection::send_header_block(std::uint32_t stream_id, util::Bytes block,
                                   bool end_stream,
                                   std::optional<PriorityFrame> priority) {
  // Header blocks larger than the peer's max frame size continue in
  // CONTINUATION frames (RFC 7540 SS4.3).
  std::size_t max_fragment = peer_settings_.max_frame_size;
  if (priority) max_fragment -= 5;
  const bool fits = block.size() <= max_fragment;

  HeadersFrame hf;
  hf.stream_id = stream_id;
  hf.end_stream = end_stream;
  hf.end_headers = fits;
  if (priority) {
    hf.has_priority = true;
    hf.stream_dependency = priority->stream_dependency;
    hf.exclusive = priority->exclusive;
    hf.weight = priority->weight;
  }
  if (fits) {
    hf.header_block = std::move(block);
    write_frame(hf);
    return;
  }
  hf.header_block.assign(block.begin(),
                         block.begin() + static_cast<std::ptrdiff_t>(max_fragment));
  write_frame(hf);
  std::size_t pos = max_fragment;
  while (pos < block.size()) {
    const std::size_t n = std::min<std::size_t>(block.size() - pos,
                                                peer_settings_.max_frame_size);
    ContinuationFrame cf;
    cf.stream_id = stream_id;
    cf.header_block.assign(block.begin() + static_cast<std::ptrdiff_t>(pos),
                           block.begin() + static_cast<std::ptrdiff_t>(pos + n));
    pos += n;
    cf.end_headers = pos == block.size();
    write_frame(cf);
  }
}

std::uint8_t Connection::stream_weight(std::uint32_t stream_id) const {
  const auto it = stream_weights_.find(stream_id);
  return it == stream_weights_.end() ? 16 : it->second;
}

void Connection::send_data(std::uint32_t stream_id, util::BytesView data,
                           bool end_stream) {
  Stream& s = require_stream(stream_id);
  if (s.state == StreamState::kClosed) return;  // raced with RST: drop quietly
  if (!s.can_send_data()) {
    throw std::logic_error("send_data in state " + std::string(to_string(s.state)));
  }
  s.pending.append(data);
  if (end_stream) s.pending_end_stream = true;
  flush_stream_pending(s);
}

void Connection::flush_stream_pending(Stream& s) {
  // With a pad provider installed, keep room for the pad-length byte plus a
  // maximal pad inside the frame-size limit (max_frame_size >= 16384 >> 256).
  const bool padded = static_cast<bool>(data_pad_provider);
  const std::int64_t frame_cap =
      static_cast<std::int64_t>(peer_settings_.max_frame_size) - (padded ? 256 : 0);
  bool drained_now = false;
  while (!s.pending.empty()) {
    const std::int64_t window = std::min(s.send_window, conn_send_window_);
    const std::int64_t allowed = std::min<std::int64_t>(
        {static_cast<std::int64_t>(s.pending.size()), frame_cap, window});
    if (allowed <= 0) break;
    // Pad bytes share the flow-control window with body bytes (the receive
    // side credits data + pad symmetrically), so clamp the pad to whatever
    // headroom the window leaves beyond the body.
    std::uint8_t pad = 0;
    if (padded) {
      pad = data_pad_provider(static_cast<std::size_t>(allowed));
      pad = static_cast<std::uint8_t>(
          std::min<std::int64_t>(pad, window - allowed));
    }
    // Encode straight from the queue's contiguous front — no DataFrame, no
    // per-frame body copy. The view stays valid until the next append(),
    // which cannot happen inside write_data().
    const util::BytesView payload = s.pending.front(static_cast<std::size_t>(allowed));
    const bool end_stream =
        s.pending.size() == static_cast<std::size_t>(allowed) && s.pending_end_stream;
    s.send_window -= allowed + pad;
    conn_send_window_ -= allowed + pad;
    s.data_bytes_sent += static_cast<std::uint64_t>(allowed);
    stats_.data_bytes_sent += static_cast<std::uint64_t>(allowed);
    ++stats_.data_frames_sent;
    if (end_stream) s.end_local();
    write_data(s.id, payload, end_stream, pad);
    s.pending.pop(static_cast<std::size_t>(allowed));
    if (s.pending.empty()) drained_now = true;
  }
  // END_STREAM on an empty tail (e.g. zero-length body or end after flush).
  if (s.pending.empty() && s.pending_end_stream && !s.local_end_sent &&
      s.state != StreamState::kClosed) {
    DataFrame df;
    df.stream_id = s.id;
    df.end_stream = true;
    if (padded) {
      const std::int64_t window =
          std::max<std::int64_t>(0, std::min(s.send_window, conn_send_window_));
      df.pad_length = static_cast<std::uint8_t>(
          std::min<std::int64_t>(data_pad_provider(0), window));
      s.send_window -= df.pad_length;
      conn_send_window_ -= df.pad_length;
      if (df.pad_length > 0) {
        obs::count(obs::Counter::kH2PadBytesSent, df.pad_length);
      }
    }
    s.end_local();
    write_frame(df);
    drained_now = true;
  }
  if (drained_now && on_stream_drained) on_stream_drained(s.id);
}

void Connection::drain_blocked_streams() {
  // Round-robin over streams with pending bytes, starting past the cursor so
  // one hungry stream cannot starve the rest when the window reopens.
  std::vector<std::uint32_t> blocked;
  for (auto& [id, s] : streams_) {
    if (!s.pending.empty()) blocked.push_back(id);
  }
  if (blocked.empty()) return;
  const auto pivot = std::upper_bound(blocked.begin(), blocked.end(), rr_cursor_);
  std::rotate(blocked.begin(), pivot, blocked.end());
  for (const std::uint32_t id : blocked) {
    Stream& s = require_stream(id);
    flush_stream_pending(s);
    rr_cursor_ = id;
    if (conn_send_window_ <= 0) break;
  }
}

std::uint32_t Connection::push_promise(std::uint32_t parent_stream_id,
                                       const hpack::HeaderList& request_headers) {
  if (role_ != Role::kServer) throw std::logic_error("push_promise on client connection");
  if (!peer_settings_.enable_push) throw std::logic_error("peer disabled server push");
  Stream& parent = require_stream(parent_stream_id);
  if (parent.state ==
      StreamState::kClosed) throw std::logic_error("push on closed stream");

  const std::uint32_t promised = next_promised_id_;
  next_promised_id_ += 2;
  Stream s;
  s.id = promised;
  s.state = StreamState::kReservedLocal;
  s.send_window = peer_settings_.initial_window_size;
  s.recv_window = config_.local_settings.initial_window_size;
  streams_.emplace(promised, std::move(s));

  PushPromiseFrame pp;
  pp.stream_id = parent_stream_id;
  pp.promised_stream_id = promised;
  pp.header_block = hpack_encoder_.encode(request_headers);
  write_frame(pp);
  ++stats_.pushes_sent;
  return promised;
}

void Connection::rst_stream(std::uint32_t stream_id, ErrorCode error) {
  Stream& s = require_stream(stream_id);
  if (s.state == StreamState::kClosed) return;
  s.reset();  // flushes the pending queue — the paper's queue-flush semantics
  RstStreamFrame rf;
  rf.stream_id = stream_id;
  rf.error = error;
  ++stats_.rst_streams_sent;
  write_frame(rf);
}

void Connection::ping() {
  PingFrame pf;
  pf.opaque = {0x68, 0x32, 0x70, 0x72, 0x69, 0x76, 0x00, 0x00};
  write_frame(pf);
}

void Connection::goaway(ErrorCode error) {
  if (goaway_sent_) return;
  goaway_sent_ = true;
  GoAwayFrame gf;
  gf.last_stream_id = highest_remote_stream_;
  gf.error = error;
  write_frame(gf);
}

void Connection::on_bytes(util::BytesView bytes) {
  if (preface_remaining_ > 0) {
    const std::size_t n = std::min(preface_remaining_, bytes.size());
    // Content check is cheap and catches cross-wired transports early.
    const std::size_t start = kConnectionPreface.size() - preface_remaining_;
    for (std::size_t i = 0; i < n; ++i) {
      if (bytes[i] != static_cast<std::uint8_t>(kConnectionPreface[start + i])) {
        throw FrameError("bad connection preface");
      }
    }
    preface_remaining_ -= n;
    bytes = bytes.subspan(n);
    if (bytes.empty()) return;
  }
  decoder_.feed(bytes);
  while (auto frame = decoder_.next()) {
    ++stats_.frames_received;
    obs::count(obs::Counter::kH2FramesReceived);
    handle_frame(std::move(*frame));
  }
}

Stream& Connection::ensure_remote_stream(std::uint32_t id) {
  auto it = streams_.find(id);
  if (it == streams_.end()) {
    Stream s;
    s.id = id;
    s.send_window = peer_settings_.initial_window_size;
    s.recv_window = config_.local_settings.initial_window_size;
    it = streams_.emplace(id, std::move(s)).first;
    highest_remote_stream_ = std::max(highest_remote_stream_, id);
  }
  return it->second;
}

void Connection::grant_receive_credit(Stream* s, std::size_t consumed) {
  // The application consumes bytes immediately in this model, so credit is
  // returned once the consumed share passes half the respective window.
  conn_recv_consumed_ += static_cast<std::int64_t>(consumed);
  if (conn_recv_consumed_ > conn_recv_window_ / 2) {
    write_frame(WindowUpdateFrame{0, util::narrow<std::uint32_t>(conn_recv_consumed_)});
    conn_recv_consumed_ = 0;
  }
  if (s != nullptr && s->state != StreamState::kClosed) {
    s->recv_consumed += static_cast<std::int64_t>(consumed);
    if (s->recv_consumed > s->recv_window / 2) {
      write_frame(
          WindowUpdateFrame{s->id, util::narrow<std::uint32_t>(s->recv_consumed)});
      s->recv_consumed = 0;
    }
  }
}

void Connection::dispatch_headers(std::uint32_t stream_id, util::Bytes block,
                                  bool end_stream) {
  Stream& s = ensure_remote_stream(stream_id);
  const hpack::HeaderList headers = hpack_decoder_.decode(block);
  if (role_ == Role::kServer) {
    s.open_remote(end_stream);
    if (on_request) on_request(stream_id, headers, end_stream);
  } else {
    // Response headers on an existing (client-opened or pushed) stream.
    if (s.state == StreamState::kReservedRemote) s.open_remote(end_stream);
    else if (end_stream) s.end_remote();
    if (on_response_headers) on_response_headers(stream_id, headers);
    if (end_stream && on_data) on_data(stream_id, util::BytesView{}, true);
  }
}

void Connection::handle_frame(Frame&& f) {
  std::visit(
      [this](auto&& frame) {
        using T = std::decay_t<decltype(frame)>;

        if constexpr (std::is_same_v<T, SettingsFrame>) {
          if (frame.ack) return;
          const std::uint32_t old_initial = peer_settings_.initial_window_size;
          peer_settings_.apply(frame.settings);
          peer_settings_received_ = true;
          decoder_.set_max_frame_size(config_.local_settings.max_frame_size);
          hpack_encoder_.resize_table(
              std::min<std::size_t>(peer_settings_.header_table_size,
                                    config_.local_settings.header_table_size));
          // Adjust live stream windows by the delta (RFC 7540 §6.9.2).
          const std::int64_t delta = static_cast<std::int64_t>(
                                         peer_settings_.initial_window_size) -
                                     old_initial;
          if (delta != 0) {
            for (auto& [id, s] : streams_) s.send_window += delta;
          }
          write_frame(SettingsFrame{.ack = true, .settings = {}});
          if (delta > 0) drain_blocked_streams();

        } else if constexpr (std::is_same_v<T, HeadersFrame>) {
          if (continuation_stream_ != 0) {
            throw FrameError("HEADERS while a header block is still open");
          }
          if (frame.has_priority) stream_weights_[frame.stream_id] = frame.weight;
          if (!frame.end_headers) {
            continuation_stream_ = frame.stream_id;
            continuation_block_ = std::move(frame.header_block);
            continuation_end_stream_ = frame.end_stream;
            return;
          }
          dispatch_headers(frame.stream_id, std::move(frame.header_block),
                           frame.end_stream);

        } else if constexpr (std::is_same_v<T, DataFrame>) {
          Stream* s = nullptr;
          if (const auto it = streams_.find(frame.stream_id); it != streams_.end()) {
            s = &it->second;
          }
          if (s == nullptr || s->state == StreamState::kClosed) {
            // Data racing a reset stream: account connection window, drop.
            grant_receive_credit(nullptr, frame.data.size() + frame.pad_length);
            return;
          }
          if (!s->can_receive_data()) {
            throw FrameError("DATA in state " + std::string(to_string(s->state)));
          }
          s->data_bytes_received += frame.data.size();
          stats_.data_bytes_received += frame.data.size();
          if (frame.end_stream) s->end_remote();
          grant_receive_credit(s, frame.data.size() + frame.pad_length);
          if (on_data) on_data(frame.stream_id, frame.data, frame.end_stream);

        } else if constexpr (std::is_same_v<T, WindowUpdateFrame>) {
          if (frame.stream_id == 0) {
            conn_send_window_ += frame.increment;
            drain_blocked_streams();
          } else if (const auto it = streams_.find(frame.stream_id); it !=
                                                   streams_.end()) {
            it->second.send_window += frame.increment;
            flush_stream_pending(it->second);
          }

        } else if constexpr (std::is_same_v<T, RstStreamFrame>) {
          ++stats_.rst_streams_received;
          obs::count(obs::Counter::kH2RstStreamsReceived);
          if (const auto it = streams_.find(frame.stream_id); it != streams_.end()) {
            it->second.reset();
          }
          if (on_rst_stream) on_rst_stream(frame.stream_id, frame.error);

        } else if constexpr (std::is_same_v<T, PingFrame>) {
          if (!frame.ack) {
            PingFrame pong = frame;
            pong.ack = true;
            write_frame(pong);
          }

        } else if constexpr (std::is_same_v<T, GoAwayFrame>) {
          goaway_received_ = true;
          if (on_goaway) on_goaway(frame.error);

        } else if constexpr (std::is_same_v<T, PushPromiseFrame>) {
          if (role_ != Role::kClient) throw FrameError("PUSH_PROMISE sent to server");
          if (!config_.local_settings.enable_push) throw FrameError("push disabled");
          Stream s;
          s.id = frame.promised_stream_id;
          s.state = StreamState::kReservedRemote;
          s.send_window = peer_settings_.initial_window_size;
          s.recv_window = config_.local_settings.initial_window_size;
          streams_.emplace(frame.promised_stream_id, std::move(s));
          const hpack::HeaderList headers = hpack_decoder_.decode(frame.header_block);
          if (on_push_promise) on_push_promise(frame.stream_id, frame.promised_stream_id,
              headers);

        } else if constexpr (std::is_same_v<T, PriorityFrame>) {
          // Advisory; the server's weighted scheduler reads the weights.
          stream_weights_[frame.stream_id] = frame.weight;
        } else if constexpr (std::is_same_v<T, ContinuationFrame>) {
          if (continuation_stream_ == 0 || frame.stream_id != continuation_stream_) {
            throw FrameError("CONTINUATION without an open header block");
          }
          continuation_block_.insert(continuation_block_.end(),
                                     frame.header_block.begin(),
                                     frame.header_block.end());
          if (frame.end_headers) {
            const std::uint32_t stream_id = continuation_stream_;
            continuation_stream_ = 0;
            dispatch_headers(stream_id, std::move(continuation_block_),
                             continuation_end_stream_);
          }
        } else {
          static_assert(std::is_same_v<T, PriorityFrame> || !sizeof(T*),
                        "unhandled frame type");
        }
      },
      std::move(f));
}

}  // namespace h2priv::h2
