// Serialization of obs::Registry and obs::TraceRing to JSON / CSV.
//
// The JSON form is deliberately integer-only and emitted in fixed enum
// order with zero entries skipped, so the METRICS_JSON line of a seeded run
// is byte-stable across platforms, job counts and reruns — stable enough to
// golden-test and to diff in the CI perf gate. The one exception is the
// pool.chunks_reused / _fresh / _oversize split: buffer pools are
// thread-local, so the reuse pattern depends on which worker ran which seed
// (the _served total stays deterministic). Golden tests zero those three
// via Registry::set(); collect_bench.py compare treats them as warn-only.
#pragma once

#include <iosfwd>
#include <string>

#include "h2priv/obs/metrics.hpp"
#include "h2priv/obs/trace_ring.hpp"

namespace h2priv::obs {

/// Stable dotted metric names ("sim.events_executed", ...).
[[nodiscard]] const char* counter_name(Counter c) noexcept;
[[nodiscard]] const char* gauge_name(Gauge g) noexcept;
[[nodiscard]] const char* hist_name(Hist h) noexcept;

/// One-line JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
/// Zero counters/gauges and empty histograms are skipped; histogram buckets
/// are emitted as [bit_width, count] pairs. No floating point anywhere.
[[nodiscard]] std::string to_json(const Registry& r);

/// Writes to_json(r) to `os` (no trailing newline).
void write_metrics_json(std::ostream& os, const Registry& r);

/// CSV: header `t_ns,layer,event,a,b` then one row per record, oldest first.
void write_trace_csv(std::ostream& os, const TraceRing& ring);

/// JSON array of record objects, oldest first.
void write_trace_json(std::ostream& os, const TraceRing& ring);

}  // namespace h2priv::obs
