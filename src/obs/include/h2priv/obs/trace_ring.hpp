// Fixed-capacity structured trace ring.
//
// A TraceRecord is a 32-byte POD (sim-time stamp + layer/event tags + two
// free-form operands); the ring overwrites the oldest record once full, so a
// long run keeps the *tail* of its event history at a bounded, pre-allocated
// cost. Capacity 0 (the default) disables the ring: push() is a single
// predictable branch, which is what lets trace points stay compiled into the
// hot path unconditionally.
//
// Rings are per-Registry and deliberately NOT merged across Monte-Carlo
// workers (interleaving event tails from independent seeds has no meaning);
// export the ring of the worker/run you care about instead.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace h2priv::obs {

/// Which subsystem pushed the record.
enum class TraceLayer : std::uint16_t {
  kSim = 0,
  kNet = 1,
  kTcp = 2,
  kTls = 3,
  kH2 = 4,
  kCore = 5,
};

/// What happened. Flat across layers so a record is self-describing.
enum class TraceEvent : std::uint16_t {
  // net
  kPacketDropped = 0,   ///< a: packet id, b: wire bytes
  kPacketHeld = 1,      ///< a: packet id, b: extra hold ns
  kPacketThrottled = 2, ///< a: packet id, b: shaper queue ns
  kPacketLost = 3,      ///< a: packet id, b: wire bytes (link loss)
  // tcp
  kRetransmit = 4,      ///< a: snd_una, b: kind (0 fast, 1 rto, 2 hole)
  kRtoFired = 5,        ///< a: backoff count, b: rto ns
  kCwndChanged = 6,     ///< a: cwnd bytes, b: ssthresh-ish (unused)
  // h2 / tls (timestamped by the caller that owns a clock)
  kRstStream = 7,       ///< a: stream id, b: error code
  kRecordSealed = 8,    ///< a: plaintext bytes, b: record seq
  // core
  kRunScored = 9,       ///< a: seed, b: events executed
};

[[nodiscard]] const char* to_string(TraceLayer layer) noexcept;
[[nodiscard]] const char* to_string(TraceEvent event) noexcept;

/// One binary trace record. POD; the ring stores these by value.
struct TraceRecord {
  std::int64_t t_ns = 0;  ///< simulated time of the event
  std::uint16_t layer = 0;
  std::uint16_t event = 0;
  std::uint32_t reserved = 0;  ///< keeps the record 8-byte aligned / 32 bytes
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};
static_assert(sizeof(TraceRecord) == 32, "TraceRecord must stay a compact POD");

class TraceRing {
 public:
  /// Disabled until set_capacity() is called with a non-zero capacity.
  TraceRing() = default;

  /// (Re)allocates the ring and clears any recorded history.
  void set_capacity(std::size_t capacity) {
    capacity_ = capacity;
    ring_.assign(capacity, TraceRecord{});
    pushed_ = 0;
  }

  [[nodiscard]] bool enabled() const noexcept { return capacity_ != 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Records stored right now (== min(pushed, capacity)).
  [[nodiscard]] std::size_t size() const noexcept {
    return pushed_ < capacity_ ? static_cast<std::size_t>(pushed_) : capacity_;
  }

  /// Total records ever pushed, including ones already overwritten.
  [[nodiscard]] std::uint64_t total_pushed() const noexcept { return pushed_; }

  void clear() noexcept {
    pushed_ = 0;
  }

  void push(std::int64_t t_ns, TraceLayer layer, TraceEvent event, std::uint64_t a = 0,
            std::uint64_t b = 0) noexcept {
    if (capacity_ == 0) return;
    TraceRecord& r = ring_[static_cast<std::size_t>(pushed_ % capacity_)];
    r.t_ns = t_ns;
    r.layer = static_cast<std::uint16_t>(layer);
    r.event = static_cast<std::uint16_t>(event);
    r.a = a;
    r.b = b;
    ++pushed_;
  }

  /// Visits stored records oldest-first (chronological push order).
  template <typename Visitor>
  void for_each(Visitor&& visit) const {
    const std::size_t n = size();
    const std::uint64_t first = pushed_ - n;
    for (std::size_t i = 0; i < n; ++i) {
      visit(ring_[static_cast<std::size_t>((first + i) % capacity_)]);
    }
  }

 private:
  std::size_t capacity_ = 0;
  std::uint64_t pushed_ = 0;
  std::vector<TraceRecord> ring_;
};

}  // namespace h2priv::obs
