// Per-layer metrics registry: the stack's internal event streams as
// first-class observables.
//
// The attack this repo reproduces works by *inferring* stack-internal events
// (suppressed retransmissions, RST_STREAM-forced restarts, multiplexing
// collapse) from ciphertext timing. The obs registry makes the same events
// directly countable on the simulator side, so experiments and the CI perf
// gate see exactly what the adversary has to guess.
//
// Hot-path contract:
//  - A Registry is plain arrays of std::uint64_t; every instrumentation
//    point is one non-atomic increment (or a bit_width + increment for
//    histogram samples). No locks, no hashing, no branches beyond the
//    thread-local load.
//  - Each thread has a *current* registry (thread-local). Monte-Carlo
//    workers (core::parallel_for) install a private registry for the span of
//    their work and merge it into the caller's registry at join. Merging is
//    commutative (sums / maxes), so every exported number is bit-identical
//    for any --jobs count.
//  - Long-lived per-run objects (Simulator, tcp::Connection, Middlebox, ...)
//    may cache `&current()` at construction: a seeded run executes entirely
//    on one worker thread, and the scoped registry is installed before the
//    topology is built. Thread-persistent objects (the thread_local
//    util::default_pool()) must resolve current() per call instead.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

#include "h2priv/obs/trace_ring.hpp"

namespace h2priv::obs {

/// Monotonic event counters, one per instrumentation point. Merge = sum.
/// Grouped by layer; the h2 per-frame-type block must stay contiguous and in
/// RFC 7540 frame-type order (see h2_frame_sent_counter).
enum class Counter : std::uint16_t {
  // sim
  kSimEventsScheduled,
  kSimEventsExecuted,
  kSimEventsCancelled,
  // net: middlebox pipeline stages
  kNetMbSeen,
  kNetMbDropped,
  kNetMbForwarded,
  kNetMbHeld,
  kNetMbThrottled,
  // net: links (background loss / gateway contention / jitter)
  kNetLinkLost,
  kNetLinkBurstDropped,
  kNetLinkJittered,
  // tcp
  kTcpSegmentsSent,
  kTcpSegmentsReceived,
  kTcpRetransmitsFast,
  kTcpRetransmitsTimeout,
  kTcpRetransmitsHole,
  kTcpRtoFired,
  kTcpRtoBackoffs,
  // tls
  kTlsRecordsSealed,
  kTlsRecordsOpened,
  kTlsPadBytesSealed,  ///< record-quantization filler (defense layer)
  // util::BufferPool (pooled-buffer hit rate of the zero-copy wire path)
  kPoolChunksServed,
  kPoolChunksReused,
  kPoolChunksFresh,
  kPoolChunksOversize,
  // h2: frames written, by type (contiguous, order == FrameType 0x0..0x9)
  kH2DataSent,
  kH2HeadersSent,
  kH2PrioritySent,
  kH2RstStreamSent,
  kH2SettingsSent,
  kH2PushPromiseSent,
  kH2PingSent,
  kH2GoAwaySent,
  kH2WindowUpdateSent,
  kH2ContinuationSent,
  kH2OtherSent,  ///< frame types beyond CONTINUATION (none today; future-proof)
  kH2FramesReceived,
  kH2RstStreamsReceived,
  kH2DataBytesSent,
  kH2PadBytesSent,  ///< DATA padding emitted (defense layer)
  // capture: .h2t trace store (compression ratio = raw_bytes / bytes_written)
  kCaptureTracesWritten,
  kCaptureBytesWritten,
  kCapturePacketsWritten,
  kCaptureRecordsWritten,
  kCaptureRawBytes,
  kCaptureTracesRead,
  kCaptureBytesRead,
  // codec: .h2t v2 block compression (cache hits/misses = decode locality)
  kCodecBlocksEncoded,
  kCodecBlocksStored,
  kCodecBlocksDecoded,
  kCodecCacheHits,
  kCodecCacheMisses,
  // corpus: sharded .h2t store + offline scoring pipeline
  kCorpusShardsWritten,
  kCorpusManifestsMerged,
  kCorpusTracesScored,
  kCorpusBytesMapped,
  // score: classifier decisions and evaluation coverage
  kScoreClassifications,
  kScoreTrainTraces,
  kScoreEvalTraces,
  kScoreCurvePoints,
  // core: per-run outcomes
  kCoreRuns,
  kCorePagesComplete,
  kCoreBrokenRuns,
  kCoreBrowserRerequests,
  kCoreResetEpisodes,
  // fleet: N-client scenarios through the shared gateway (src/fleet)
  kFleetClients,
  // cache: the fleet reverse-proxy tier's per-request outcomes. kCacheHits..
  // kCacheStale must stay contiguous: cache_outcome_counter() maps
  // fleet::CacheOutcome onto this block positionally.
  kCacheHits,
  kCacheMisses,
  kCacheStale,
  kCacheEvictions,

  kCount,
};
inline constexpr std::size_t kCounterCount = static_cast<std::size_t>(Counter::kCount);

/// High-water marks. Merge = max (commutative, so job-count invariant); only
/// the maximum is well-defined across workers, so that is all a gauge keeps.
enum class Gauge : std::uint16_t {
  kSimHeapDepth,       ///< deepest pending-event heap
  kTcpSendBufferBytes, ///< largest live send-buffer occupancy
  kTcpCwndBytes,       ///< largest congestion window reached
  kCount,
};
inline constexpr std::size_t kGaugeCount = static_cast<std::size_t>(Gauge::kCount);

/// Log-bucket (power-of-two) histograms. Merge = element-wise sum + max.
enum class Hist : std::uint16_t {
  kTcpCwndBytes,        ///< cwnd sampled at every ACK-driven change
  kTcpSendBufOccupancy, ///< live send-buffer bytes sampled at every send()
  kTlsRecordBytes,      ///< plaintext bytes per sealed record (the wire observable)
  kH2ObjectDomMilli,    ///< per-object degree of multiplexing x1000
  kFleetClientDomMilli, ///< per-client HTML degree of multiplexing x1000
  kCount,
};
inline constexpr std::size_t kHistCount = static_cast<std::size_t>(Hist::kCount);

/// Bucket i holds values whose bit_width is i: bucket 0 = {0}, bucket 1 =
/// {1}, bucket k = [2^(k-1), 2^k). 64-bit values need buckets 0..64.
inline constexpr std::size_t kHistBuckets = 65;

[[nodiscard]] constexpr std::size_t hist_bucket(std::uint64_t value) noexcept {
  return static_cast<std::size_t>(std::bit_width(value));
}

/// Smallest value that lands in `bucket` (0 for bucket 0).
[[nodiscard]] constexpr std::uint64_t hist_bucket_floor(std::size_t bucket) noexcept {
  return bucket == 0 ? 0 : std::uint64_t{1} << (bucket - 1);
}

struct HistogramData {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::array<std::uint64_t, kHistBuckets> buckets{};

  void record(std::uint64_t value) noexcept {
    ++count;
    sum += value;
    if (value > max) max = value;
    ++buckets[hist_bucket(value)];
  }

  void merge_from(const HistogramData& o) noexcept {
    count += o.count;
    sum += o.sum;
    if (o.max > max) max = o.max;
    for (std::size_t i = 0; i < kHistBuckets; ++i) buckets[i] += o.buckets[i];
  }
};

/// One layer-spanning bundle of counters, gauges, histograms and a trace
/// ring. Single-threaded by design; see the file comment for the
/// one-registry-per-worker contract.
class Registry {
 public:
  void add(Counter c, std::uint64_t n = 1) noexcept {
    counters_[static_cast<std::size_t>(c)] += n;
  }
  [[nodiscard]] std::uint64_t get(Counter c) const noexcept {
    return counters_[static_cast<std::size_t>(c)];
  }
  /// Overwrites a counter. Tests use this to zero the few scheduling-
  /// dependent counters (the pool reuse/fresh split) before byte-comparing
  /// exported JSON; instrumentation points never call it.
  void set(Counter c, std::uint64_t value) noexcept {
    counters_[static_cast<std::size_t>(c)] = value;
  }

  void gauge_max(Gauge g, std::uint64_t value) noexcept {
    std::uint64_t& cur = gauges_[static_cast<std::size_t>(g)];
    if (value > cur) cur = value;
  }
  [[nodiscard]] std::uint64_t gauge(Gauge g) const noexcept {
    return gauges_[static_cast<std::size_t>(g)];
  }

  void sample(Hist h, std::uint64_t value) noexcept {
    hists_[static_cast<std::size_t>(h)].record(value);
  }
  [[nodiscard]] const HistogramData& histogram(Hist h) const noexcept {
    return hists_[static_cast<std::size_t>(h)];
  }

  [[nodiscard]] TraceRing& trace() noexcept { return trace_; }
  [[nodiscard]] const TraceRing& trace() const noexcept { return trace_; }

  /// Folds another registry's counts into this one. Commutative and
  /// associative over any merge order, which is what keeps --jobs N batch
  /// totals bit-identical to the serial run. The trace ring is NOT merged
  /// (tails of independent seeds don't interleave meaningfully).
  void merge_from(const Registry& o) noexcept {
    for (std::size_t i = 0; i < kCounterCount; ++i) counters_[i] += o.counters_[i];
    for (std::size_t i = 0; i < kGaugeCount; ++i) {
      if (o.gauges_[i] > gauges_[i]) gauges_[i] = o.gauges_[i];
    }
    for (std::size_t i = 0; i < kHistCount; ++i) hists_[i].merge_from(o.hists_[i]);
  }

  /// Zeroes every counter/gauge/histogram and clears the trace ring.
  void reset() noexcept {
    counters_.fill(0);
    gauges_.fill(0);
    hists_.fill(HistogramData{});
    trace_.clear();
  }

 private:
  std::array<std::uint64_t, kCounterCount> counters_{};
  std::array<std::uint64_t, kGaugeCount> gauges_{};
  std::array<HistogramData, kHistCount> hists_{};
  TraceRing trace_;
};

namespace detail {
// The default registry gives threads outside any scope (tests, examples,
// the bench main thread) somewhere harmless to count into.
inline thread_local Registry tl_default_registry;
inline thread_local Registry* tl_current_registry = nullptr;
}  // namespace detail

/// The calling thread's current registry (the thread default unless a
/// ScopedRegistry / set_current override is active).
[[nodiscard]] inline Registry& current() noexcept {
  return detail::tl_current_registry != nullptr ? *detail::tl_current_registry
                                                : detail::tl_default_registry;
}

/// Installs `r` as the thread-current registry (nullptr = thread default).
/// Returns the previous override for restoration.
inline Registry* set_current(Registry* r) noexcept {
  Registry* prev = detail::tl_current_registry;
  detail::tl_current_registry = r;
  return prev;
}

/// RAII override of the thread-current registry. Optionally merges its
/// contents into the previously-current registry on exit (what parallel
/// workers do at join).
class ScopedRegistry {
 public:
  explicit ScopedRegistry(bool merge_on_exit = false)
      : merge_on_exit_(merge_on_exit), prev_(set_current(&registry_)) {}
  ~ScopedRegistry() {
    set_current(prev_);
    if (merge_on_exit_) current().merge_from(registry_);
  }
  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;

  [[nodiscard]] Registry& registry() noexcept { return registry_; }
  [[nodiscard]] const Registry& registry() const noexcept { return registry_; }

 private:
  Registry registry_;
  bool merge_on_exit_;
  Registry* prev_;
};

// --- instrumentation shorthands (what the layers actually call) ------------

inline void count(Counter c, std::uint64_t n = 1) noexcept { current().add(c, n); }
inline void gauge_to_max(Gauge g, std::uint64_t v) noexcept { current().gauge_max(g, v); }
inline void sample(Hist h, std::uint64_t v) noexcept { current().sample(h, v); }

/// Maps an RFC 7540 frame type byte (0x0..0x9) onto the contiguous
/// kH2*Sent counter block; anything newer/unknown lands in kH2OtherSent.
[[nodiscard]] constexpr Counter h2_frame_sent_counter(unsigned frame_type) noexcept {
  constexpr auto base = static_cast<std::uint16_t>(Counter::kH2DataSent);
  return frame_type <= 9 ? static_cast<Counter>(base +
                                                frame_type) : Counter::kH2OtherSent;
}

/// Maps a cache-proxy request outcome (fleet::CacheOutcome, encoded 0 = hit,
/// 1 = miss, 2 = stale) onto the contiguous kCacheHits..kCacheStale block.
[[nodiscard]] constexpr Counter cache_outcome_counter(unsigned outcome) noexcept {
  constexpr auto base = static_cast<std::uint16_t>(Counter::kCacheHits);
  return outcome <= 2 ? static_cast<Counter>(base + outcome) : Counter::kCacheStale;
}

}  // namespace h2priv::obs
