#include "h2priv/obs/export.hpp"

#include <array>
#include <ostream>
#include <sstream>

namespace h2priv::obs {

namespace {

constexpr std::array<const char*, kCounterCount> kCounterNames = {
    "sim.events_scheduled",
    "sim.events_executed",
    "sim.events_cancelled",
    "net.mb_seen",
    "net.mb_dropped",
    "net.mb_forwarded",
    "net.mb_held",
    "net.mb_throttled",
    "net.link_lost",
    "net.link_burst_dropped",
    "net.link_jittered",
    "tcp.segments_sent",
    "tcp.segments_received",
    "tcp.retransmits_fast",
    "tcp.retransmits_timeout",
    "tcp.retransmits_hole",
    "tcp.rto_fired",
    "tcp.rto_backoffs",
    "tls.records_sealed",
    "tls.records_opened",
    "tls.pad_bytes_sealed",
    "pool.chunks_served",
    "pool.chunks_reused",
    "pool.chunks_fresh",
    "pool.chunks_oversize",
    "h2.data_sent",
    "h2.headers_sent",
    "h2.priority_sent",
    "h2.rst_stream_sent",
    "h2.settings_sent",
    "h2.push_promise_sent",
    "h2.ping_sent",
    "h2.goaway_sent",
    "h2.window_update_sent",
    "h2.continuation_sent",
    "h2.other_sent",
    "h2.frames_received",
    "h2.rst_streams_received",
    "h2.data_bytes_sent",
    "h2.pad_bytes_sent",
    "capture.traces_written",
    "capture.bytes_written",
    "capture.packets_written",
    "capture.records_written",
    "capture.raw_bytes",
    "capture.traces_read",
    "capture.bytes_read",
    "codec.blocks_encoded",
    "codec.blocks_stored",
    "codec.blocks_decoded",
    "codec.cache_hits",
    "codec.cache_misses",
    "corpus.shards_written",
    "corpus.manifests_merged",
    "corpus.traces_scored",
    "corpus.bytes_mapped",
    "score.classifications",
    "score.train_traces",
    "score.eval_traces",
    "score.curve_points",
    "core.runs",
    "core.pages_complete",
    "core.broken_runs",
    "core.browser_rerequests",
    "core.reset_episodes",
    "fleet.clients",
    "cache.hits",
    "cache.misses",
    "cache.stale",
    "cache.evictions",
};

constexpr std::array<const char*, kGaugeCount> kGaugeNames = {
    "sim.heap_depth_max",
    "tcp.send_buffer_bytes_max",
    "tcp.cwnd_bytes_max",
};

constexpr std::array<const char*, kHistCount> kHistNames = {
    "tcp.cwnd_bytes",
    "tcp.send_buf_occupancy",
    "tls.record_bytes",
    "h2.object_dom_milli",
    "fleet.client_dom_milli",
};

constexpr std::array<const char*, 6> kLayerNames = {"sim", "net", "tcp",
                                                    "tls", "h2",  "core"};

constexpr std::array<const char*, 10> kEventNames = {
    "packet_dropped", "packet_held", "packet_throttled", "packet_lost",
    "retransmit",     "rto_fired",   "cwnd_changed",     "rst_stream",
    "record_sealed",  "run_scored",
};

}  // namespace

const char* counter_name(Counter c) noexcept {
  const auto i = static_cast<std::size_t>(c);
  return i < kCounterNames.size() ? kCounterNames[i] : "?";
}

const char* gauge_name(Gauge g) noexcept {
  const auto i = static_cast<std::size_t>(g);
  return i < kGaugeNames.size() ? kGaugeNames[i] : "?";
}

const char* hist_name(Hist h) noexcept {
  const auto i = static_cast<std::size_t>(h);
  return i < kHistNames.size() ? kHistNames[i] : "?";
}

const char* to_string(TraceLayer layer) noexcept {
  const auto i = static_cast<std::size_t>(layer);
  return i < kLayerNames.size() ? kLayerNames[i] : "?";
}

const char* to_string(TraceEvent event) noexcept {
  const auto i = static_cast<std::size_t>(event);
  return i < kEventNames.size() ? kEventNames[i] : "?";
}

std::string to_json(const Registry& r) {
  std::ostringstream os;
  write_metrics_json(os, r);
  return os.str();
}

void write_metrics_json(std::ostream& os, const Registry& r) {
  os << "{\"counters\":{";
  bool first = true;
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    const std::uint64_t v = r.get(static_cast<Counter>(i));
    if (v == 0) continue;
    os << (first ? "" : ",") << '"' << kCounterNames[i] << "\":" << v;
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (std::size_t i = 0; i < kGaugeCount; ++i) {
    const std::uint64_t v = r.gauge(static_cast<Gauge>(i));
    if (v == 0) continue;
    os << (first ? "" : ",") << '"' << kGaugeNames[i] << "\":" << v;
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (std::size_t i = 0; i < kHistCount; ++i) {
    const HistogramData& h = r.histogram(static_cast<Hist>(i));
    if (h.count == 0) continue;
    os << (first ? "" : ",") << '"' << kHistNames[i] << "\":{\"count\":" << h.count
       << ",\"sum\":" << h.sum << ",\"max\":" << h.max << ",\"buckets\":[";
    bool first_bucket = true;
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      os << (first_bucket ? "" : ",") << '[' << b << ',' << h.buckets[b] << ']';
      first_bucket = false;
    }
    os << "]}";
    first = false;
  }
  os << "}}";
}

void write_trace_csv(std::ostream& os, const TraceRing& ring) {
  os << "t_ns,layer,event,a,b\n";
  ring.for_each([&os](const TraceRecord& rec) {
    os << rec.t_ns << ',' << to_string(static_cast<TraceLayer>(rec.layer)) << ','
       << to_string(static_cast<TraceEvent>(rec.event)) << ',' << rec.a << ',' << rec.b
       << '\n';
  });
}

void write_trace_json(std::ostream& os, const TraceRing& ring) {
  os << '[';
  bool first = true;
  ring.for_each([&](const TraceRecord& rec) {
    os << (first ? "" : ",") << "{\"t_ns\":" << rec.t_ns << ",\"layer\":\""
       << to_string(static_cast<TraceLayer>(rec.layer)) << "\",\"event\":\""
       << to_string(static_cast<TraceEvent>(rec.event)) << "\",\"a\":" << rec.a
       << ",\"b\":" << rec.b << '}';
    first = false;
  });
  os << "]\n";
}

}  // namespace h2priv::obs
