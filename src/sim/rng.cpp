#include "h2priv/sim/rng.hpp"

#include <cmath>

namespace h2priv::sim {

namespace {
std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // xoshiro must not start from the all-zero state.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  if (lo >= hi) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Rejection sampling removes modulo bias.
  const std::uint64_t limit = span * (~0ull / span);
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return lo + static_cast<std::int64_t>(v % span);
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

util::Duration Rng::exponential(util::Duration mean) noexcept {
  if (mean.ns <= 0) return {};
  const double u = 1.0 - uniform();  // avoid log(0)
  const double d = -static_cast<double>(mean.ns) * std::log(u);
  return {static_cast<std::int64_t>(d)};
}

util::Duration Rng::uniform_duration(util::Duration lo, util::Duration hi) noexcept {
  return {uniform_int(lo.ns, hi.ns)};
}

util::Duration Rng::jittered(util::Duration mean, util::Duration sigma,
                             util::Duration floor) noexcept {
  // Irwin–Hall with n=12 gives a unit-variance approximate normal.
  double acc = 0.0;
  for (int i = 0; i < 12; ++i) acc += uniform();
  const double z = acc - 6.0;
  const double clipped = std::clamp(z, -3.0, 3.0);
  const auto v =
      mean.ns + static_cast<std::int64_t>(clipped * static_cast<double>(sigma.ns));
  return {std::max(v, floor.ns)};
}

}  // namespace h2priv::sim
