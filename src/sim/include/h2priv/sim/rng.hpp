// Deterministic PRNG (xoshiro256**) for all simulation randomness.
//
// One Rng per experiment run, seeded by (experiment seed, run index); every
// stochastic element — jitter draws, loss coin-flips, client think times,
// party-order shuffles — derives from it, so runs replay exactly.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "h2priv/util/units.hpp"

namespace h2priv::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Uniform 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Exponentially distributed duration with the given mean.
  util::Duration exponential(util::Duration mean) noexcept;

  /// Uniform duration in [lo, hi].
  util::Duration uniform_duration(util::Duration lo, util::Duration hi) noexcept;

  /// Truncated-normal-ish duration: mean ± up to 3 sigma, never below floor.
  /// (Sum-of-uniforms approximation — adequate for think-time noise.)
  util::Duration jittered(util::Duration mean, util::Duration sigma,
                          util::Duration floor = {}) noexcept;

  /// Fisher–Yates shuffle.
  template <class T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator (for sub-components).
  [[nodiscard]] Rng fork() noexcept { return Rng(next() ^ 0xa0761d6478bd642full); }

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace h2priv::sim
