// Small-buffer move-only callable for simulator events.
//
// The hot path schedules millions of short-lived closures per run; with
// std::function each one costs a heap allocation whenever the capture list
// outgrows libstdc++'s 16-byte inline buffer — which a Link delivery lambda
// (this + a 40-byte Packet) always does. Task inlines captures up to
// kInlineSize bytes (sized for the largest lambda the stack schedules:
// Link/Middlebox packet deliveries) and only falls back to the heap beyond
// that. Move-only, since event closures are executed exactly once and
// routinely own Packets.
#pragma once

#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>

namespace h2priv::sim {

class Task {
 public:
  /// Inline capture budget. Link's delivery lambda — the most common event in
  /// any run — captures `this` plus a Packet (id + direction + a vector), 48
  /// bytes on LP64; 64 leaves headroom for one extra captured pointer.
  static constexpr std::size_t kInlineSize = 64;

  Task() noexcept = default;

  template <class F, class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, Task> &&
                                     std::is_invocable_r_v<void, D&>>>
  Task(F&& fn) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(fn)));
      ops_ = &kHeapOps<D>;
    }
  }

  Task(Task&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  ~Task() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-constructs into `dst` from `src` and destroys `src`.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <class D>
  static constexpr bool fits_inline =
      sizeof(D) <= kInlineSize && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  template <class D>
  static constexpr Ops kInlineOps{
      [](void* s) { (*static_cast<D*>(static_cast<void*>(s)))(); },
      [](void* dst, void* src) noexcept {
        D* from = static_cast<D*>(src);
        ::new (dst) D(std::move(*from));
        from->~D();
      },
      [](void* s) noexcept { static_cast<D*>(s)->~D(); },
  };

  template <class D>
  static constexpr Ops kHeapOps{
      [](void* s) { (**static_cast<D**>(s))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) D*(*static_cast<D**>(src));
      },
      [](void* s) noexcept { delete *static_cast<D**>(s); },
  };

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace h2priv::sim
