// Discrete-event simulation core.
//
// Every component in the stack (links, TCP timers, server handlers, the
// adversary's drop windows) schedules closures on one Simulator. Events at
// equal timestamps run in scheduling order, which makes whole-system runs
// bit-for-bit reproducible for a given seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "h2priv/util/units.hpp"

namespace h2priv::sim {

using util::Duration;
using util::TimePoint;

/// Opaque handle for cancelling a scheduled event.
struct EventId {
  std::uint64_t value = 0;
  [[nodiscard]] constexpr bool valid() const noexcept { return value != 0; }
  friend constexpr bool operator==(EventId, EventId) noexcept = default;
};

/// Single-threaded discrete-event scheduler with a nanosecond clock.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] TimePoint now() const noexcept { return now_; }

  /// Schedules `fn` to run `delay` from now (delay must be >= 0).
  EventId schedule(Duration delay, std::function<void()> fn);

  /// Schedules `fn` at absolute time `when` (must be >= now()).
  EventId schedule_at(TimePoint when, std::function<void()> fn);

  /// Cancels a pending event; no-op if it already ran or was cancelled.
  void cancel(EventId id);

  /// Runs events until the queue is empty. Returns number of events executed.
  std::size_t run();

  /// Runs events with timestamp <= `deadline`; clock ends at
  /// min(deadline, last event time) or `deadline` if events remain.
  std::size_t run_until(TimePoint deadline);

  /// Executes the single earliest event. Returns false if queue is empty.
  bool step();

  [[nodiscard]] bool empty() const noexcept { return queue_.size() == cancelled_.size(); }
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size() - cancelled_.size(); }

  /// Safety valve: run()/run_until() throw std::runtime_error after this many
  /// events (default 200M) — catches accidental event storms in tests.
  void set_event_limit(std::size_t limit) noexcept { event_limit_ = limit; }

 private:
  struct Entry {
    TimePoint when;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    std::uint64_t id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool pop_and_run();

  TimePoint now_{};
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t event_limit_ = 200'000'000;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<std::uint64_t> cancelled_;
};

}  // namespace h2priv::sim
