// Discrete-event simulation core.
//
// Every component in the stack (links, TCP timers, server handlers, the
// adversary's drop windows) schedules closures on one Simulator. Events at
// equal timestamps run in scheduling order, which makes whole-system runs
// bit-for-bit reproducible for a given seed.
//
// Hot-path design notes:
//  - The queue is a hand-rolled binary heap over a reserved std::vector of
//    24-byte POD entries (time, FIFO seq, slot index); sift operations move
//    three words per level and steady-state runs never reallocate.
//  - Each pending event's closure lives in a free-listed slot table, not in
//    the heap, so reordering the queue never moves a closure.
//  - Cancellation is O(1) via slot/generation handles: cancel() flips the
//    slot's live bit in place (destroying the closure early) and the pop
//    loop discards dead entries. No hash lookup per pop (the previous
//    scheme probed an unordered_set for every executed event).
//  - Closures are sim::Task (64-byte small-buffer, move-only) instead of
//    std::function: packet-delivery lambdas no longer heap-allocate.
#pragma once

#include <cstdint>
#include <vector>

#include "h2priv/obs/metrics.hpp"
#include "h2priv/sim/task.hpp"
#include "h2priv/util/units.hpp"

namespace h2priv::sim {

using util::Duration;
using util::TimePoint;

/// Opaque handle for cancelling a scheduled event. Encodes a slot index in
/// the low 32 bits and that slot's generation in the high 32 bits, so a
/// handle kept across the event's execution (or cancellation) goes stale
/// instead of aliasing a later event that reuses the slot.
struct EventId {
  std::uint64_t value = 0;
  [[nodiscard]] constexpr bool valid() const noexcept { return value != 0; }
  friend constexpr bool operator==(EventId, EventId) noexcept = default;
};

/// Single-threaded discrete-event scheduler with a nanosecond clock.
class Simulator {
 public:
  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] TimePoint now() const noexcept { return now_; }

  /// Schedules `fn` to run `delay` from now (delay must be >= 0).
  EventId schedule(Duration delay, Task fn);

  /// Schedules `fn` at absolute time `when` (must be >= now()).
  EventId schedule_at(TimePoint when, Task fn);

  /// Cancels a pending event; no-op if it already ran or was cancelled.
  void cancel(EventId id);

  /// Runs events until the queue is empty. Returns number of events executed.
  std::size_t run();

  /// Runs events with timestamp <= `deadline`; clock ends at
  /// min(deadline, last event time) or `deadline` if events remain.
  std::size_t run_until(TimePoint deadline);

  /// Executes the single earliest event. Returns false if queue is empty.
  bool step();

  [[nodiscard]] bool empty() const noexcept { return pending() == 0; }
  [[nodiscard]] std::size_t pending() const noexcept {
    return heap_.size() - cancelled_pending_;
  }

  /// Total events executed so far (cancelled entries don't count).
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

  /// Safety valve: run()/run_until() throw std::runtime_error after this many
  /// events (default 200M) — catches accidental event storms in tests.
  void set_event_limit(std::size_t limit) noexcept { event_limit_ = limit; }

 private:
  /// Heap element — deliberately closure-free POD so sifts stay cheap.
  struct Entry {
    TimePoint when;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    std::uint32_t slot;
  };
  /// Per-pending-event closure + handle bookkeeping; recycled via free list.
  struct Slot {
    Task fn;
    std::uint32_t generation = 1;
    std::uint32_t next_free = kNoSlot;
    bool live = false;
  };
  static constexpr std::uint32_t kNoSlot = 0xffff'ffffu;

  [[nodiscard]] static bool later(const Entry& a, const Entry& b) noexcept {
    if (a.when != b.when) return a.when > b.when;
    return a.seq > b.seq;
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot) noexcept;
  void sift_up(std::size_t i) noexcept;
  void sift_down(std::size_t i) noexcept;
  void remove_top();
  bool pop_and_run();
  /// Drops cancelled entries off the heap top; true if a live head remains.
  bool settle_head();

  /// The thread-current metrics registry, captured at construction (a
  /// Simulator lives and dies on one Monte-Carlo worker) so the per-event
  /// instrumentation skips the thread-local lookup.
  obs::Registry* obs_ = nullptr;

  TimePoint now_{};
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t event_limit_ = 200'000'000;
  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  std::size_t cancelled_pending_ = 0;
};

}  // namespace h2priv::sim
