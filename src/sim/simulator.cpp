#include "h2priv/sim/simulator.hpp"

#include <stdexcept>
#include <utility>

namespace h2priv::sim {

namespace {
/// Steady-state queue depth of a full-stack page load stays well under this;
/// reserving up front keeps the hot loop free of reallocations.
constexpr std::size_t kInitialCapacity = 1024;
}  // namespace

Simulator::Simulator() : obs_(&obs::current()) {
  heap_.reserve(kInitialCapacity);
  slots_.reserve(kInitialCapacity);
}

EventId Simulator::schedule(Duration delay, Task fn) {
  if (delay.ns < 0) throw std::invalid_argument("Simulator::schedule: negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Simulator::schedule_at(TimePoint when, Task fn) {
  if (when < now_) throw std::invalid_argument("Simulator::schedule_at: time in the pas"
                                               "t");
  const std::uint64_t seq = next_seq_++;
  const std::uint32_t slot = acquire_slot();
  slots_[slot].fn = std::move(fn);
  heap_.push_back(Entry{when, seq, slot});
  sift_up(heap_.size() - 1);
  obs_->add(obs::Counter::kSimEventsScheduled);
  obs_->gauge_max(obs::Gauge::kSimHeapDepth, heap_.size());
  return EventId{(static_cast<std::uint64_t>(slots_[slot].generation) << 32) | slot};
}

void Simulator::cancel(EventId id) {
  if (!id.valid()) return;
  const auto slot = static_cast<std::uint32_t>(id.value & 0xffff'ffffu);
  const auto generation = static_cast<std::uint32_t>(id.value >> 32);
  if (slot >= slots_.size()) return;
  Slot& s = slots_[slot];
  if (s.generation != generation || !s.live) return;  // already ran or cancelled
  s.live = false;
  s.fn = Task{};  // the closure will never run — free its resources now
  ++cancelled_pending_;
  obs_->add(obs::Counter::kSimEventsCancelled);
}

std::uint32_t Simulator::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    slots_[slot].live = true;
    return slot;
  }
  slots_.push_back(Slot{Task{}, 1, kNoSlot, true});
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::release_slot(std::uint32_t slot) noexcept {
  Slot& s = slots_[slot];
  // Bump the generation so stale EventIds for this slot can never cancel a
  // later event that reuses it; skip 0 so packed handles stay non-zero.
  if (++s.generation == 0) s.generation = 1;
  s.live = false;
  s.next_free = free_head_;
  free_head_ = slot;
}

void Simulator::sift_up(std::size_t i) noexcept {
  Entry e = std::move(heap_[i]);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!later(heap_[parent], e)) break;
    heap_[i] = std::move(heap_[parent]);
    i = parent;
  }
  heap_[i] = std::move(e);
}

void Simulator::sift_down(std::size_t i) noexcept {
  const std::size_t n = heap_.size();
  Entry e = std::move(heap_[i]);
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && later(heap_[child], heap_[child + 1])) ++child;
    if (!later(e, heap_[child])) break;
    heap_[i] = std::move(heap_[child]);
    i = child;
  }
  heap_[i] = std::move(e);
}

void Simulator::remove_top() {
  if (heap_.size() > 1) {
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    sift_down(0);
  } else {
    heap_.pop_back();
  }
}

bool Simulator::settle_head() {
  while (!heap_.empty()) {
    const std::uint32_t slot = heap_.front().slot;
    if (slots_[slot].live) return true;
    release_slot(slot);
    --cancelled_pending_;
    remove_top();
  }
  return false;
}

bool Simulator::pop_and_run() {
  if (!settle_head()) return false;
  const Entry top = heap_.front();
  now_ = top.when;
  Task fn = std::move(slots_[top.slot].fn);
  release_slot(top.slot);
  remove_top();
  fn();
  obs_->add(obs::Counter::kSimEventsExecuted);
  if (++executed_ > event_limit_) {
    throw std::runtime_error("Simulator: event limit exceeded (runaway event storm?)");
  }
  return true;
}

std::size_t Simulator::run() {
  std::size_t n = 0;
  while (pop_and_run()) ++n;
  return n;
}

std::size_t Simulator::run_until(TimePoint deadline) {
  std::size_t n = 0;
  while (settle_head()) {
    if (heap_.front().when > deadline) break;
    if (pop_and_run()) ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

bool Simulator::step() {
  return pop_and_run();
}

}  // namespace h2priv::sim
