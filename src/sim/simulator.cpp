#include "h2priv/sim/simulator.hpp"

#include <stdexcept>
#include <utility>

namespace h2priv::sim {

EventId Simulator::schedule(Duration delay, std::function<void()> fn) {
  if (delay.ns < 0) throw std::invalid_argument("Simulator::schedule: negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Simulator::schedule_at(TimePoint when, std::function<void()> fn) {
  if (when < now_) throw std::invalid_argument("Simulator::schedule_at: time in the past");
  const std::uint64_t seq = next_seq_++;
  queue_.push(Entry{when, seq, seq, std::move(fn)});
  return EventId{seq};
}

void Simulator::cancel(EventId id) {
  if (id.valid()) cancelled_.insert(id.value);
}

bool Simulator::pop_and_run() {
  while (!queue_.empty()) {
    // priority_queue has no non-const top-with-move; Entry's closure must be
    // moved out before pop, so copy the POD fields first.
    auto& top = const_cast<Entry&>(queue_.top());
    const TimePoint when = top.when;
    const std::uint64_t id = top.id;
    std::function<void()> fn = std::move(top.fn);
    queue_.pop();
    if (const auto it = cancelled_.find(id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = when;
    fn();
    if (++executed_ > event_limit_) {
      throw std::runtime_error("Simulator: event limit exceeded (runaway event storm?)");
    }
    return true;
  }
  return false;
}

std::size_t Simulator::run() {
  std::size_t n = 0;
  while (pop_and_run()) ++n;
  return n;
}

std::size_t Simulator::run_until(TimePoint deadline) {
  std::size_t n = 0;
  while (!queue_.empty()) {
    // Skip cancelled heads so their timestamps don't stall the deadline check.
    if (cancelled_.contains(queue_.top().id)) {
      cancelled_.erase(queue_.top().id);
      queue_.pop();
      continue;
    }
    if (queue_.top().when > deadline) break;
    if (pop_and_run()) ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

bool Simulator::step() {
  return pop_and_run();
}

}  // namespace h2priv::sim
