#include "h2priv/fleet/sweep.hpp"

#include <cinttypes>
#include <cstdio>

namespace h2priv::fleet {

namespace {

/// Fixed-point percent with two decimals — deterministic text, no locale or
/// floating-format surprises in the report.
std::string percent(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f%%", fraction * 100.0);
  return buf;
}

}  // namespace

SweepPoint score_fleet(std::size_t cache_mb, const FleetResult& fleet) {
  SweepPoint point;
  point.cache_mb = cache_mb;
  point.hit_rate = fleet.cache_hit_rate();
  double html = 0.0, emblems = 0.0, sequence = 0.0;
  for (const FleetClientResult& c : fleet.clients) {
    ClientScore s;
    s.seed = c.profile.seed;
    s.cache_hits = c.cache_hits;
    s.cache_misses = c.cache_misses;
    s.cache_stale = c.cache_stale;
    s.html_success = c.result.html.attack_success;
    for (const core::ObjectOutcome& o : c.result.emblems_by_position) {
      s.emblem_successes += o.attack_success ? 1 : 0;
    }
    s.sequence_correct = c.result.sequence_positions_correct;
    html += s.html_success ? 1.0 : 0.0;
    emblems += static_cast<double>(s.emblem_successes) / web::kPartyCount;
    sequence += static_cast<double>(s.sequence_correct) / web::kPartyCount;
    point.clients.push_back(s);
  }
  const auto n = static_cast<double>(fleet.clients.empty() ? 1 : fleet.clients.size());
  point.html_accuracy = html / n;
  point.emblem_accuracy = emblems / n;
  point.sequence_accuracy = sequence / n;
  return point;
}

SweepResult run_sweep(const SweepOptions& options) {
  SweepResult result;
  result.fleet_clients = options.config.fleet.clients;
  result.seed = options.config.seed;
  for (const std::size_t cache_mb : options.cache_sizes_mb) {
    core::RunConfig cfg = options.config;
    cfg.fleet.cache_mb = cache_mb;
    result.points.push_back(score_fleet(cache_mb, run_fleet(cfg, options.parallelism)));
  }
  return result;
}

std::string format_report(const SweepResult& result, bool per_client) {
  std::string out = "h2t-fleet-sweep v1\n";
  char line[256];
  std::snprintf(line, sizeof(line), "clients %d seed %" PRIu64 "\n",
                result.fleet_clients, result.seed);
  out += line;
  for (const SweepPoint& p : result.points) {
    std::snprintf(line, sizeof(line),
                  "cache_mb %zu hit_rate %s html_acc %s emblem_acc %s seq_acc %s\n",
                  p.cache_mb, percent(p.hit_rate).c_str(),
                  percent(p.html_accuracy).c_str(),
                  percent(p.emblem_accuracy).c_str(),
                  percent(p.sequence_accuracy).c_str());
    out += line;
    if (!per_client) continue;
    for (std::size_t i = 0; i < p.clients.size(); ++i) {
      const ClientScore& c = p.clients[i];
      std::snprintf(line, sizeof(line),
                    "  client %zu seed %" PRIu64
                    " hits %" PRIu64 " misses %" PRIu64 " stale %" PRIu64
                    " html %d emblems %d/%d seq %d/%d\n",
                    i, c.seed, c.cache_hits, c.cache_misses, c.cache_stale,
                    c.html_success ? 1 : 0, c.emblem_successes, web::kPartyCount,
                    c.sequence_correct, web::kPartyCount);
      out += line;
    }
  }
  return out;
}

}  // namespace h2priv::fleet
