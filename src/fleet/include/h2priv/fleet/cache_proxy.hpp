// The caching reverse-proxy tier between the shared gateway and the origin.
//
// A CacheProxy is a deterministic object cache driven by the same
// discrete-event core as everything else in the stack: TTL expiry is a
// sim::Simulator event per resident object (the simulator's binary heap is
// the expiry wheel), so freshness transitions interleave with request
// arrivals in exact timestamp order — no wall clocks, no scan passes.
//
// Freshness model (stale-while-revalidate):
//   age in [0, ttl)      -> kHit    served from cache
//   age in [ttl, 2*ttl)  -> kStale  served stale, revalidation refreshes it
//   age >= 2*ttl         -> entry expired (removed by its event) -> kMiss
//
// Capacity is enforced in bytes with LRU eviction on insert; objects larger
// than the whole cache are passed through uncached.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <string>

#include "h2priv/sim/simulator.hpp"
#include "h2priv/util/units.hpp"

namespace h2priv::fleet {

/// Per-request cache verdict. Encoded values are stable: they index the
/// contiguous obs::Counter::kCacheHits..kCacheStale block
/// (obs::cache_outcome_counter) and appear in .h2t fleet sections.
enum class CacheOutcome { kHit = 0, kMiss = 1, kStale = 2 };

struct CacheProxyConfig {
  /// Cache capacity in bytes (0 = every request misses: cache off).
  std::size_t capacity_bytes = 0;
  /// Freshness lifetime; entries serve stale until 2*ttl, then expire.
  util::Duration ttl{util::seconds(30)};
};

struct CacheProxyStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stale = 0;
  /// LRU capacity evictions plus TTL expiries.
  std::uint64_t evictions = 0;
};

class CacheProxy {
 public:
  CacheProxy(sim::Simulator& sim, CacheProxyConfig config);

  /// Classifies one request arriving at sim.now(). A miss inserts the
  /// object (evicting LRU entries for room); a stale hit revalidates and
  /// refreshes the entry's lifetime.
  CacheOutcome request(const std::string& path, std::size_t size);

  [[nodiscard]] const CacheProxyStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t resident_bytes() const noexcept { return resident_bytes_; }
  [[nodiscard]] std::size_t resident_objects() const noexcept { return entries_.size(); }

 private:
  struct Entry {
    std::size_t size = 0;
    util::TimePoint fresh_until{};
    sim::EventId expiry{};
    std::list<std::string>::iterator lru_it;
  };

  void insert(const std::string& path, std::size_t size);
  void evict(std::map<std::string, Entry>::iterator it, bool count_eviction);
  void arm_expiry(const std::string& path, Entry& e);

  sim::Simulator& sim_;
  CacheProxyConfig config_;
  CacheProxyStats stats_;
  std::map<std::string, Entry> entries_;
  /// LRU order, most recent at the front; iterators stored in entries_.
  std::list<std::string> lru_;
  std::size_t resident_bytes_ = 0;
};

}  // namespace h2priv::fleet
