// The fleet sweep: one fleet run per cache size (including cache-off), each
// scored per client — the attack-accuracy-vs-cache-hit-rate curve.
//
// The report is deterministic text ("h2t-fleet-sweep v1"): a pure function
// of the sweep results, so CI can diff it and EXPERIMENTS.md can quote it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "h2priv/fleet/fleet.hpp"

namespace h2priv::fleet {

struct SweepOptions {
  /// Base config for every point: seed, scenario knobs, fleet.clients and
  /// fleet timing fields are honored; fleet.cache_mb is overridden per point.
  core::RunConfig config{};
  /// Cache sizes to sweep, in MiB; 0 = cache off (the single-client-equivalent
  /// baseline point).
  std::vector<std::size_t> cache_sizes_mb = {0, 1, 8};
  core::Parallelism parallelism{};
};

struct ClientScore {
  std::uint64_t seed = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_stale = 0;
  bool html_success = false;
  int emblem_successes = 0;  ///< of web::kPartyCount
  int sequence_correct = 0;  ///< of web::kPartyCount
};

struct SweepPoint {
  std::size_t cache_mb = 0;
  double hit_rate = 0.0;
  /// Fleet means over clients.
  double html_accuracy = 0.0;
  double emblem_accuracy = 0.0;
  double sequence_accuracy = 0.0;
  std::vector<ClientScore> clients;
};

struct SweepResult {
  int fleet_clients = 0;
  std::uint64_t seed = 0;
  std::vector<SweepPoint> points;  ///< in cache_sizes_mb order
};

/// Scores one already-run fleet into a sweep point.
[[nodiscard]] SweepPoint score_fleet(std::size_t cache_mb, const FleetResult& fleet);

/// Runs the whole sweep (one fleet per cache size, same seed and profiles).
[[nodiscard]] SweepResult run_sweep(const SweepOptions& options);

/// Renders the canonical report: a header, one summary line per point, and
/// (with `per_client`) a per-client table under each point.
[[nodiscard]] std::string format_report(const SweepResult& result,
                                        bool per_client = true);

}  // namespace h2priv::fleet
