// Fleet-scale simulation: N concurrent clients with heterogeneous path
// profiles behind one shared gateway, with a caching reverse proxy
// (cache_proxy.hpp) between gateway and origin.
//
// Determinism model — the whole subsystem is built so a fleet run is
// bit-identical at any --jobs count:
//
//  1. Everything that couples clients (the fleet plan, and every cache
//     admission decision) happens in a SERIAL pre-pass: per-client seeds and
//     path profiles derive from one fleet Rng chain; each client's request
//     arrival schedule is modeled from its (deterministically re-derivable)
//     page-load plan; the globally time-sorted arrival sequence drives one
//     CacheProxy on a private simulator. The pre-pass output is a per-client
//     path -> CacheOutcome map.
//  2. Per-client page loads then run through the unmodified core::run_once
//     in a parallel_for — each is a self-contained simulation whose only
//     fleet input is the pure path->delay function derived in step 1
//     (ServerConfig::origin_delay), so clients are independent and
//     embarrassingly parallel.
//  3. All joining (DoM histogram samples, trace merging, manifests) is
//     serial again, in client order.
//
// The merged .h2t fleet trace carries per-packet/per-record connection ids
// (Section::kConnIds) and per-connection provenance + ground truth + summary
// (Section::kFleet), so capture::demux_fleet recovers each client's
// observation streams bit-for-bit for offline replay and scoring.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "h2priv/core/experiment.hpp"
#include "h2priv/core/parallel_runner.hpp"
#include "h2priv/fleet/cache_proxy.hpp"

namespace h2priv::fleet {

/// One client's heterogeneous network profile, drawn deterministically from
/// the fleet seed chain (plan_fleet).
struct ClientProfile {
  std::uint64_t seed = 0;  ///< the client's core::run_once seed
  util::Duration start_offset{};
  util::Duration client_hop_delay{};
  util::Duration server_hop_delay{};
  util::BitRate link_rate{};
  double background_loss = 0.0;
};

struct FleetClientResult {
  ClientProfile profile;
  core::RunResult result;
  core::RunObservations obs;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_stale = 0;
};

struct FleetResult {
  std::vector<FleetClientResult> clients;
  std::uint64_t cache_evictions = 0;

  [[nodiscard]] std::uint64_t cache_requests() const noexcept;
  /// Fraction of requests served from cache (hits + stale revalidations).
  [[nodiscard]] double cache_hit_rate() const noexcept;
};

/// Derives the N client profiles for `config` (serial, pure). The chain is
/// keyed on config.seed, so two fleets with the same seed and client count
/// get identical profiles regardless of cache settings.
[[nodiscard]] std::vector<ClientProfile> plan_fleet(const core::RunConfig& config);

/// Runs one fleet: serial cache pre-pass, parallel per-client page loads,
/// serial join. With config.capture enabled, writes one merged fleet .h2t
/// (config.capture.path, or <corpus_dir>/run_<seed>.h2t). Requires
/// config.fleet.enabled(); throws std::invalid_argument otherwise.
[[nodiscard]] FleetResult run_fleet(const core::RunConfig& config,
                                    core::Parallelism parallelism);

/// Corpus mode: `runs` fleet traces for seeds {config.seed ..} into
/// config.capture.corpus_dir plus a manifest.txt in the exact format
/// core::run_many writes — entries sorted by seed, digests over file bytes —
/// so the manifest is byte-identical for any job count and `cmp` is a
/// sufficient CI check.
[[nodiscard]] std::vector<FleetResult> run_fleet_corpus(
    const core::RunConfig& config, int runs, core::Parallelism parallelism);

}  // namespace h2priv::fleet
