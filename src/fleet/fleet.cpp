#include "h2priv/fleet/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <map>
#include <memory>
#include <stdexcept>
#include <utility>

#include "h2priv/capture/corpus.hpp"
#include "h2priv/capture/trace_writer.hpp"
#include "h2priv/obs/metrics.hpp"
#include "h2priv/web/isidewith.hpp"

namespace h2priv::fleet {

namespace {

/// One modeled request arrival at the cache tier (admission pre-pass).
struct Arrival {
  std::int64_t when_ns = 0;
  int client = 0;
  const web::SiteObject* obj = nullptr;
};

/// Models client `client`'s request arrival times at the proxy from its
/// (deterministically re-derived) page-load plan: main-phase requests at
/// start_offset + cumulative gaps; the deferred phase is approximated as
/// starting trigger_delay after the trigger *request* (the pre-pass needs an
/// admission order, not exact completion times — the approximation is itself
/// deterministic, which is all the determinism model requires).
void append_arrivals(const web::IsideWithSite& site, const core::RunConfig& config,
                     const ClientProfile& p, int client, std::vector<Arrival>& out) {
  sim::Rng client_root(p.seed);
  sim::Rng plan_rng = client_root.fork();  // run_once's first fork — same plan
  const web::IsideWithPlan plan = web::build_isidewith_plan(site, plan_rng, config.tuning);

  std::int64_t t = p.start_offset.ns;
  std::int64_t trigger_t = t;
  for (const web::RequestPlan::Item& item : plan.plan.items) {
    if (item.deferred) continue;
    t += item.gap_before.ns;
    out.push_back({t, client, &site.site.object(item.object_id)});
    if (item.object_id == plan.plan.trigger_object) trigger_t = t;
  }
  std::int64_t dt = trigger_t + plan.plan.trigger_delay.ns;
  for (const web::RequestPlan::Item& item : plan.plan.items) {
    if (!item.deferred) continue;
    dt += item.gap_before.ns;
    out.push_back({dt, client, &site.site.object(item.object_id)});
  }
}

struct CachePrepass {
  /// Per-client pure path -> extra-origin-delay map (the origin_delay hook).
  std::vector<std::map<std::string, util::Duration>> delays;
  /// Per-client {hits, misses, stale}.
  std::vector<std::array<std::uint64_t, 3>> counts;
  CacheProxyStats stats;
};

/// The serial admission pre-pass: every cross-client cache decision happens
/// here, in global (time, client) order, on one CacheProxy driven by a
/// private simulator — TTL expiries interleave with arrivals through the
/// event heap exactly as timestamps dictate.
CachePrepass run_prepass(const core::RunConfig& config,
                         const std::vector<ClientProfile>& profiles,
                         const web::IsideWithSite& site) {
  const int n = static_cast<int>(profiles.size());
  CachePrepass pp;
  pp.delays.resize(static_cast<std::size_t>(n));
  pp.counts.assign(static_cast<std::size_t>(n), {});

  std::vector<Arrival> arrivals;
  for (int i = 0; i < n; ++i) {
    append_arrivals(site, config, profiles[static_cast<std::size_t>(i)], i, arrivals);
  }
  std::stable_sort(arrivals.begin(), arrivals.end(),
                   [](const Arrival& a, const Arrival& b) {
                     if (a.when_ns != b.when_ns) return a.when_ns < b.when_ns;
                     return a.client < b.client;
                   });

  sim::Simulator cache_sim;
  CacheProxyConfig proxy_cfg;
  proxy_cfg.capacity_bytes = config.fleet.cache_mb * 1024 * 1024;
  proxy_cfg.ttl = config.fleet.cache_ttl;
  CacheProxy proxy(cache_sim, proxy_cfg);
  const util::Duration miss_penalty = config.fleet.miss_penalty;

  for (const Arrival& a : arrivals) {
    cache_sim.schedule_at(util::TimePoint{a.when_ns}, [&pp, &proxy, miss_penalty, a] {
      const CacheOutcome o = proxy.request(a.obj->path, a.obj->size);
      const auto c = static_cast<std::size_t>(a.client);
      ++pp.counts[c][static_cast<std::size_t>(o)];
      util::Duration extra{};
      if (o == CacheOutcome::kMiss) extra = miss_penalty;
      if (o == CacheOutcome::kStale) extra = miss_penalty / 2;
      // First outcome per (client, path) wins: browser re-GETs after resets
      // must see the same delay every time (origin_delay purity rule).
      pp.delays[c].emplace(a.obj->path, extra);
    });
  }
  cache_sim.run();
  pp.stats = proxy.stats();
  return pp;
}

/// run_once's verdict, reshaped into the stored TraceSummary (mirrors the
/// to_verdict step of core::run_once's capture path).
capture::TraceSummary summary_of(const core::RunResult& r) {
  const auto to_verdict = [](const core::ObjectOutcome& o) {
    capture::ObjectVerdict v;
    v.label = o.label;
    v.true_size = o.true_size;
    v.has_dom = o.primary_dom.has_value();
    if (o.primary_dom) v.primary_dom = *o.primary_dom;
    v.serialized_primary = o.serialized_primary;
    v.any_serialized_copy = o.any_serialized_copy;
    v.identified = o.identified;
    v.attack_success = o.attack_success;
    return v;
  };
  capture::TraceSummary summary;
  summary.monitor_packets = r.monitor_packets;
  summary.monitor_gets = r.monitor_gets;
  summary.html = to_verdict(r.html);
  for (std::size_t pos = 0; pos < static_cast<std::size_t>(web::kPartyCount); ++pos) {
    summary.emblems_by_position[pos] = to_verdict(r.emblems_by_position[pos]);
  }
  summary.predicted_sequence = r.predicted_sequence;
  summary.sequence_positions_correct = r.sequence_positions_correct;
  return summary;
}

std::string fleet_trace_path(const core::RunConfig& config) {
  if (!config.capture.path.empty()) return config.capture.path;
  std::filesystem::create_directories(config.capture.corpus_dir);
  return config.capture.corpus_dir + "/" + capture::trace_filename(config.seed);
}

/// Serial merge of every client's observation streams into one fleet trace:
/// begin_fleet first (provenance + per-client truth/verdict blobs), then
/// k-way merges ordered by (client-local time + start offset, client index)
/// — a pure function of the per-client results, so the bytes are identical
/// for any job count.
void write_fleet_trace(const core::RunConfig& config, const FleetResult& fleet) {
  capture::TraceMeta meta;
  meta.seed = config.seed;
  meta.scenario = config.capture.scenario;
  meta.attack_enabled = config.attack_enabled;
  meta.pad_sensitive_objects = config.pad_sensitive_objects;
  meta.push_emblems = config.push_emblems;
  if (config.manual_spacing) meta.manual_spacing_ns = config.manual_spacing->ns;
  if (config.manual_bandwidth) {
    meta.manual_bandwidth_bps = config.manual_bandwidth->bits_per_sec;
  }
  meta.deadline_ns = config.deadline.ns;
  meta.defense = config.server.defense;
  capture::TraceWriter writer(fleet_trace_path(config), std::move(meta));

  std::vector<capture::FleetConn> conns;
  conns.reserve(fleet.clients.size());
  for (const FleetClientResult& c : fleet.clients) {
    capture::FleetConn fc;
    fc.client_seed = c.profile.seed;
    fc.start_offset_ns = c.profile.start_offset.ns;
    fc.attack_horizon_ns = c.obs.attack_horizon_ns;
    fc.party_order = c.result.true_party_order;
    fc.client_hop_delay_ns = c.profile.client_hop_delay.ns;
    fc.server_hop_delay_ns = c.profile.server_hop_delay.ns;
    fc.link_rate_bps = c.profile.link_rate.bits_per_sec;
    fc.cache_hits = c.cache_hits;
    fc.cache_misses = c.cache_misses;
    fc.cache_stale = c.cache_stale;
    fc.truth = *c.result.truth;
    fc.summary = summary_of(c.result);
    conns.push_back(std::move(fc));
  }
  writer.begin_fleet(conns);

  const int n = static_cast<int>(fleet.clients.size());
  const auto offset_ns = [&](int i) {
    return fleet.clients[static_cast<std::size_t>(i)].profile.start_offset.ns;
  };
  const auto merge = [&](auto column, auto emit) {
    std::vector<std::size_t> idx(static_cast<std::size_t>(n), 0);
    for (;;) {
      int best = -1;
      std::int64_t best_t = 0;
      for (int i = 0; i < n; ++i) {
        const auto& items = column(fleet.clients[static_cast<std::size_t>(i)]);
        const std::size_t k = idx[static_cast<std::size_t>(i)];
        if (k >= items.size()) continue;
        const std::int64_t t = items[k].time.ns + offset_ns(i);
        if (best < 0 || t < best_t) {
          best = i;
          best_t = t;
        }
      }
      if (best < 0) break;
      const auto& items = column(fleet.clients[static_cast<std::size_t>(best)]);
      auto obs = items[idx[static_cast<std::size_t>(best)]++];
      obs.time.ns += offset_ns(best);
      emit(obs, static_cast<std::uint32_t>(best));
    }
  };
  merge([](const FleetClientResult& c) -> const auto& { return c.obs.packets; },
        [&](const analysis::PacketObservation& p, std::uint32_t id) {
          writer.add_packet(p, id);
        });
  merge([](const FleetClientResult& c) -> const auto& { return c.obs.records_c2s; },
        [&](const analysis::RecordObservation& r, std::uint32_t id) {
          writer.add_record(r, id);
        });
  merge([](const FleetClientResult& c) -> const auto& { return c.obs.records_s2c; },
        [&](const analysis::RecordObservation& r, std::uint32_t id) {
          writer.add_record(r, id);
        });
  writer.finish();
}

}  // namespace

std::uint64_t FleetResult::cache_requests() const noexcept {
  std::uint64_t total = 0;
  for (const FleetClientResult& c : clients) {
    total += c.cache_hits + c.cache_misses + c.cache_stale;
  }
  return total;
}

double FleetResult::cache_hit_rate() const noexcept {
  std::uint64_t served = 0;
  for (const FleetClientResult& c : clients) served += c.cache_hits + c.cache_stale;
  const std::uint64_t total = cache_requests();
  return total == 0 ? 0.0 : static_cast<double>(served) / static_cast<double>(total);
}

std::vector<ClientProfile> plan_fleet(const core::RunConfig& config) {
  if (!config.fleet.enabled()) {
    throw std::invalid_argument("plan_fleet: fleet.clients must be > 0");
  }
  // A dedicated seed stream, offset from the raw run seed so fleet draws
  // never alias a lone run_once(config.seed)'s own Rng chain.
  sim::Rng rng(config.seed * 0x9e3779b97f4a7c15ull + 0xf1ee7);
  static constexpr std::int64_t kRatesMbps[] = {100, 500, 1000};

  std::vector<ClientProfile> out;
  out.reserve(static_cast<std::size_t>(config.fleet.clients));
  for (int i = 0; i < config.fleet.clients; ++i) {
    ClientProfile p;
    p.seed = rng.next();
    p.start_offset = rng.uniform_duration({}, config.fleet.start_spread);
    p.client_hop_delay =
        rng.uniform_duration(util::milliseconds(1), util::milliseconds(5));
    p.server_hop_delay =
        rng.uniform_duration(util::milliseconds(10), util::milliseconds(40));
    p.link_rate = util::megabits_per_second(kRatesMbps[rng.uniform_int(0, 2)]);
    p.background_loss = 0.0001 + rng.uniform() * 0.0009;
    out.push_back(p);
  }
  return out;
}

FleetResult run_fleet(const core::RunConfig& config, core::Parallelism parallelism) {
  if (!config.fleet.enabled()) {
    throw std::invalid_argument("run_fleet: fleet.clients must be > 0");
  }
  const int n = config.fleet.clients;
  const std::vector<ClientProfile> profiles = plan_fleet(config);
  const web::IsideWithSite site =
      web::build_isidewith_site(config.pad_sensitive_objects);
  const bool cache_on = config.fleet.cache_mb > 0;

  obs::Registry& reg = obs::current();
  FleetResult fleet;
  fleet.clients.resize(static_cast<std::size_t>(n));

  // Serial pre-pass: the only place clients couple.
  std::vector<std::shared_ptr<const std::map<std::string, util::Duration>>> delays(
      static_cast<std::size_t>(n));
  if (cache_on) {
    CachePrepass pp = run_prepass(config, profiles, site);
    for (int i = 0; i < n; ++i) {
      const auto k = static_cast<std::size_t>(i);
      fleet.clients[k].cache_hits = pp.counts[k][0];
      fleet.clients[k].cache_misses = pp.counts[k][1];
      fleet.clients[k].cache_stale = pp.counts[k][2];
      delays[k] = std::make_shared<const std::map<std::string, util::Duration>>(
          std::move(pp.delays[k]));
    }
    fleet.cache_evictions = pp.stats.evictions;
    reg.add(obs::Counter::kCacheHits, pp.stats.hits);
    reg.add(obs::Counter::kCacheMisses, pp.stats.misses);
    reg.add(obs::Counter::kCacheStale, pp.stats.stale);
    reg.add(obs::Counter::kCacheEvictions, pp.stats.evictions);
  }

  // Parallel page loads: each client is a self-contained run_once whose only
  // fleet input is its pure path->delay map.
  core::parallel_for(n, parallelism, [&](int i) {
    const auto k = static_cast<std::size_t>(i);
    core::RunConfig cfg = config;
    cfg.fleet = core::FleetConfig{};
    cfg.capture = core::CaptureOptions{};
    cfg.trace_export_prefix.clear();
    cfg.packet_tap = nullptr;
    cfg.observations_out = &fleet.clients[k].obs;
    cfg.seed = profiles[k].seed;
    cfg.path.client_hop_delay = profiles[k].client_hop_delay;
    cfg.path.server_hop_delay = profiles[k].server_hop_delay;
    cfg.path.link_rate = profiles[k].link_rate;
    cfg.path.background_loss = profiles[k].background_loss;
    if (cache_on) {
      const std::shared_ptr<const std::map<std::string, util::Duration>> d = delays[k];
      cfg.server.origin_delay = [d](const std::string& path) {
        const auto it = d->find(path);
        return it == d->end() ? util::Duration{} : it->second;
      };
    }
    fleet.clients[k].profile = profiles[k];
    fleet.clients[k].result = core::run_once(cfg);
  });

  // Serial join: fleet-level metrics in client order, then the merged trace.
  reg.add(obs::Counter::kFleetClients, static_cast<std::uint64_t>(n));
  for (const FleetClientResult& c : fleet.clients) {
    if (c.result.html.primary_dom.has_value()) {
      reg.sample(obs::Hist::kFleetClientDomMilli,
                 static_cast<std::uint64_t>(
                     std::llround(*c.result.html.primary_dom * 1000.0)));
    }
  }
  if (config.capture.enabled()) write_fleet_trace(config, fleet);
  return fleet;
}

std::vector<FleetResult> run_fleet_corpus(const core::RunConfig& config, int runs,
                                          core::Parallelism parallelism) {
  if (config.capture.corpus_dir.empty()) {
    throw std::invalid_argument("run_fleet_corpus: capture.corpus_dir required");
  }
  std::filesystem::create_directories(config.capture.corpus_dir);

  std::vector<FleetResult> out;
  capture::Manifest manifest;
  manifest.scenario = config.capture.scenario;
  manifest.base_seed = config.seed;
  for (int r = 0; r < runs; ++r) {
    core::RunConfig cfg = config;
    cfg.seed = config.seed + static_cast<std::uint64_t>(r);
    cfg.capture.path.clear();
    out.push_back(run_fleet(cfg, parallelism));

    capture::ManifestEntry entry;
    entry.seed = cfg.seed;
    entry.file = capture::trace_filename(entry.seed);
    std::uint64_t packets = 0;
    for (const FleetClientResult& c : out.back().clients) {
      packets += c.obs.packets.size();
    }
    entry.packets = packets;
    const std::string path = config.capture.corpus_dir + "/" + entry.file;
    entry.digest = capture::digest_file(path);
    const capture::TraceSizes sizes = capture::trace_sizes(path);
    entry.raw_bytes = sizes.raw_bytes;
    entry.stored_bytes = sizes.stored_bytes;
    manifest.entries.push_back(std::move(entry));
  }
  capture::write_manifest(manifest, config.capture.corpus_dir + "/manifest.txt");
  return out;
}

}  // namespace h2priv::fleet
