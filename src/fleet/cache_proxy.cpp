#include "h2priv/fleet/cache_proxy.hpp"

namespace h2priv::fleet {

CacheProxy::CacheProxy(sim::Simulator& sim, CacheProxyConfig config)
    : sim_(sim), config_(config) {}

CacheOutcome CacheProxy::request(const std::string& path, std::size_t size) {
  const auto it = entries_.find(path);
  if (it == entries_.end()) {
    ++stats_.misses;
    insert(path, size);
    return CacheOutcome::kMiss;
  }

  Entry& e = it->second;
  // LRU touch on every access.
  lru_.splice(lru_.begin(), lru_, e.lru_it);
  if (sim_.now() < e.fresh_until) {
    ++stats_.hits;
    return CacheOutcome::kHit;
  }
  // Stale window [ttl, 2*ttl): serve stale, revalidation makes it fresh
  // again — cancel the pending expiry and re-arm from now.
  ++stats_.stale;
  sim_.cancel(e.expiry);
  e.fresh_until = sim_.now() + config_.ttl;
  arm_expiry(path, e);
  return CacheOutcome::kStale;
}

void CacheProxy::insert(const std::string& path, std::size_t size) {
  if (size > config_.capacity_bytes) return;  // uncacheable; pass through
  while (resident_bytes_ + size > config_.capacity_bytes && !lru_.empty()) {
    evict(entries_.find(lru_.back()), /*count_eviction=*/true);
  }
  Entry e;
  e.size = size;
  e.fresh_until = sim_.now() + config_.ttl;
  lru_.push_front(path);
  e.lru_it = lru_.begin();
  auto [slot, inserted] = entries_.emplace(path, std::move(e));
  arm_expiry(path, slot->second);
  resident_bytes_ += size;
}

void CacheProxy::evict(std::map<std::string, Entry>::iterator it,
                       bool count_eviction) {
  sim_.cancel(it->second.expiry);
  resident_bytes_ -= it->second.size;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
  if (count_eviction) ++stats_.evictions;
}

void CacheProxy::arm_expiry(const std::string& path, Entry& e) {
  // Hard expiry at the end of the stale window. Revalidation cancels and
  // re-arms; eviction cancels. The captured path keys the lookup, so a slot
  // reused by a later insert is found by its own (newer) event only.
  e.expiry = sim_.schedule_at(e.fresh_until + config_.ttl, [this, path] {
    const auto it = entries_.find(path);
    if (it != entries_.end()) evict(it, /*count_eviction=*/true);
  });
}

}  // namespace h2priv::fleet
