#include "h2priv/analysis/timeline.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace h2priv::analysis {

namespace {

struct Lane {
  const ResponseInstance* instance;
  std::uint64_t overlap;
};

char cell_for(const ResponseInstance& inst, std::uint64_t lo, std::uint64_t hi) {
  // '#' if any of the instance's bytes fall in [lo,hi); '.' if the cell lies
  // inside the instance's span but carries only foreign bytes.
  bool in_span = false;
  if (const auto span = inst.span()) {
    in_span = span->begin < hi && span->end > lo;
  }
  for (const ByteInterval& iv : inst.data) {
    if (iv.begin < hi && iv.end > lo) return '#';
  }
  return in_span ? '.' : ' ';
}

}  // namespace

std::string render_timeline(const GroundTruth& truth, const TimelineOptions& options) {
  std::uint64_t window_end = options.end;
  if (window_end == 0) {
    for (const auto& inst : truth.instances()) {
      if (const auto span = inst.span()) window_end = std::max(window_end, span->end);
    }
  }
  if (window_end <= options.begin) return "(empty window)\n";
  const std::uint64_t window_begin = options.begin;
  const std::uint64_t total = window_end - window_begin;

  // Pick the lanes: instances overlapping the window, biggest overlap first.
  std::vector<Lane> lanes;
  for (const auto& inst : truth.instances()) {
    std::uint64_t overlap = 0;
    for (const ByteInterval& iv : inst.data) {
      const std::uint64_t lo = std::max(iv.begin, window_begin);
      const std::uint64_t hi = std::min(iv.end, window_end);
      if (hi > lo) overlap += hi - lo;
    }
    if (overlap >= options.min_bytes) lanes.push_back({&inst, overlap});
  }
  std::sort(lanes.begin(), lanes.end(), [&](const Lane& a, const Lane& b) {
    const bool fa = a.instance->object_id == options.focus_object;
    const bool fb = b.instance->object_id == options.focus_object;
    if (fa != fb) return fa;  // focus lanes survive the cap
    return a.overlap > b.overlap;
  });
  if (static_cast<int>(lanes.size()) > options.max_lanes) {
    lanes.resize(static_cast<std::size_t>(options.max_lanes));
  }
  // Draw in first-byte order for readability.
  std::sort(lanes.begin(), lanes.end(), [](const Lane& a, const Lane& b) {
    const auto sa = a.instance->span();
    const auto sb = b.instance->span();
    return (sa ? sa->begin : 0) < (sb ? sb->begin : 0);
  });

  std::string out;
  char header[160];
  std::snprintf(header, sizeof(header),
                "stream bytes [%llu, %llu) — one lane per response instance\n",
                static_cast<unsigned long long>(window_begin),
                static_cast<unsigned long long>(window_end));
  out += header;

  const int width = std::max(options.width, 10);
  for (const Lane& lane : lanes) {
    char label[64];
    std::snprintf(label, sizeof(label), "obj %3u%s %-7s|",
                  lane.instance->object_id, lane.instance->duplicate ? "*" : " ",
                  lane.instance->complete ? "" : "(part)");
    out += label;
    for (int c = 0; c < width; ++c) {
      const auto uc = static_cast<std::uint64_t>(c);
      const auto uw = static_cast<std::uint64_t>(width);
      const std::uint64_t lo = window_begin + total * uc / uw;
      const std::uint64_t hi = window_begin + total * (uc + 1) / uw;
      out += cell_for(*lane.instance, lo, std::max(hi, lo + 1));
    }
    char dom[48];
    std::snprintf(dom, sizeof(dom), "| DoM %.2f\n",
                  truth.degree_of_multiplexing(lane.instance->id));
    out += dom;
  }
  out += "('#' bytes of the lane's object; '.' foreign bytes inside its span; '*' re-requ"
         "est copy)\n";
  return out;
}

std::string render_around_object(const GroundTruth& truth, web::ObjectId object,
                                 double margin_fraction, int width) {
  const ResponseInstance* primary = truth.primary_instance(object);
  // Fall back to any complete instance (e.g. the post-reset copy).
  if (primary == nullptr || !primary->span()) {
    for (const auto* inst : truth.instances_of(object)) {
      if (inst->span()) {
        primary = inst;
        break;
      }
    }
  }
  if (primary == nullptr || !primary->span()) return "(object never served)\n";
  const ByteInterval span = *primary->span();
  const auto margin =
      static_cast<std::uint64_t>(static_cast<double>(span.size()) * margin_fraction);
  TimelineOptions options;
  options.begin = span.begin > margin ? span.begin - margin : 0;
  options.end = span.end + margin;
  options.width = width;
  options.min_bytes = 64;
  options.focus_object = object;
  return render_timeline(truth, options);
}

std::string render_around_serialized_copy(const GroundTruth& truth, web::ObjectId object,
                                           double margin_fraction, int width) {
  const ResponseInstance* chosen = nullptr;
  for (const auto* inst : truth.instances_of(object)) {
    if (inst->complete && inst->span() && truth.degree_of_multiplexing(inst->id) == 0.0) {
      chosen = inst;  // keep the last such copy
    }
  }
  if (chosen == nullptr) return render_around_object(truth, object, margin_fraction,
      width);
  const ByteInterval span = *chosen->span();
  const auto margin =
      static_cast<std::uint64_t>(static_cast<double>(span.size()) * margin_fraction);
  TimelineOptions options;
  options.begin = span.begin > margin ? span.begin - margin : 0;
  options.end = span.end + margin;
  options.width = width;
  options.min_bytes = 64;
  options.focus_object = object;
  return render_timeline(truth, options);
}

}  // namespace h2priv::analysis
