#include "h2priv/analysis/trace_export.hpp"

#include <limits>
#include <ostream>

namespace h2priv::analysis {

namespace {

const char* dir_name(net::Direction d) {
  return d == net::Direction::kClientToServer ? "c2s" : "s2c";
}

/// RAII bump of a stream's float precision to max_digits10, so exported
/// timestamps and DoM values survive a parse round trip exactly. Default
/// ostream precision (6 significant digits) truncates nanosecond-resolution
/// times beyond ~1000 s and perturbs any DoM with a long mantissa.
class FullPrecision {
 public:
  explicit FullPrecision(std::ostream& os)
      : os_(os),
        saved_(os.precision(std::numeric_limits<double>::max_digits10)) {}
  ~FullPrecision() { os_.precision(saved_); }
  FullPrecision(const FullPrecision&) = delete;
  FullPrecision& operator=(const FullPrecision&) = delete;

 private:
  std::ostream& os_;
  std::streamsize saved_;
};

}  // namespace

void write_packets_csv(std::ostream& os, std::span<const PacketObservation> packets) {
  const FullPrecision precision(os);
  os << "time_s,dir,wire_size,seq,ack,flags,payload_len\n";
  for (const PacketObservation& p : packets) {
    os << p.time.seconds() << ',' << dir_name(p.dir) << ',' << p.wire_size << ',' << p.seq
       << ',' << p.ack << ',' << static_cast<int>(p.flags) << ',' << p.payload_len <<
                                                  '\n';
  }
}

void write_records_csv(std::ostream& os, std::span<const RecordObservation> records) {
  const FullPrecision precision(os);
  os << "time_s,dir,content_type,ciphertext_len,plaintext_estimate,stream_offset\n";
  for (const RecordObservation& r : records) {
    os << r.time.seconds() << ',' << dir_name(r.dir) << ','
       << static_cast<int>(r.type) << ',' << r.ciphertext_len << ','
       << r.plaintext_estimate() << ',' << r.stream_offset << '\n';
  }
}

void write_ground_truth_csv(std::ostream& os, const GroundTruth& truth) {
  const FullPrecision precision(os);
  os << "instance,object,stream,duplicate,complete,dom,begin,end\n";
  for (const ResponseInstance& inst : truth.instances()) {
    const double dom = truth.degree_of_multiplexing(inst.id);
    for (const ByteInterval& iv : inst.data) {
      os << inst.id << ',' << inst.object_id << ',' << inst.stream_id << ','
         << (inst.duplicate ? 1 : 0) << ',' << (inst.complete ? 1 : 0) << ',' << dom <<
             ','
         << iv.begin << ',' << iv.end << '\n';
    }
  }
}

}  // namespace h2priv::analysis
