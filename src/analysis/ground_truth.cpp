#include "h2priv/analysis/ground_truth.hpp"

#include <algorithm>
#include <stdexcept>

namespace h2priv::analysis {

std::uint64_t ResponseInstance::data_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const ByteInterval& iv : data) total += iv.size();
  return total;
}

std::optional<ByteInterval> ResponseInstance::span() const noexcept {
  if (data.empty()) return std::nullopt;
  ByteInterval s{data.front().begin, data.front().end};
  for (const ByteInterval& iv : data) {
    s.begin = std::min(s.begin, iv.begin);
    s.end = std::max(s.end, iv.end);
  }
  return s;
}

InstanceId GroundTruth::register_instance(web::ObjectId object, std::uint32_t stream_id,
                                          bool duplicate) {
  ResponseInstance inst;
  inst.id = instances_.size() + 1;
  inst.object_id = object;
  inst.stream_id = stream_id;
  inst.duplicate = duplicate;
  instances_.push_back(std::move(inst));
  return instances_.back().id;
}

const ResponseInstance& GroundTruth::instance(InstanceId id) const {
  if (id == 0 || id > instances_.size()) {
    throw std::out_of_range("GroundTruth: bad instance id " + std::to_string(id));
  }
  return instances_[id - 1];
}

void GroundTruth::record_data(InstanceId id, h2::WireSpan span) {
  if (span.empty()) return;
  instances_.at(id - 1).data.push_back(ByteInterval{span.begin, span.end});
}

void GroundTruth::record_headers(InstanceId id, h2::WireSpan span) {
  if (span.empty()) return;
  instances_.at(id - 1).headers.push_back(ByteInterval{span.begin, span.end});
}

void GroundTruth::mark_complete(InstanceId id) {
  instances_.at(id - 1).complete = true;
}

const ResponseInstance* GroundTruth::primary_instance(web::ObjectId object) const {
  for (const ResponseInstance& inst : instances_) {
    if (inst.object_id == object && !inst.duplicate) return &inst;
  }
  return nullptr;
}

std::vector<const ResponseInstance*> GroundTruth::instances_of(
    web::ObjectId object) const {
  std::vector<const ResponseInstance*> out;
  for (const ResponseInstance& inst : instances_) {
    if (inst.object_id == object) out.push_back(&inst);
  }
  return out;
}

double GroundTruth::degree_of_multiplexing(InstanceId id) const {
  const ResponseInstance& self = instance(id);
  const std::uint64_t total = self.data_bytes();
  if (total == 0) return 0.0;

  // Union of the other instances' spans.
  std::vector<ByteInterval> spans;
  for (const ResponseInstance& other : instances_) {
    if (other.id == id) continue;
    if (const auto s = other.span()) spans.push_back(*s);
  }
  if (spans.empty()) return 0.0;
  std::sort(spans.begin(), spans.end(),
            [](const ByteInterval& a,
               const ByteInterval& b) { return a.begin < b.begin; });
  std::vector<ByteInterval> merged;
  for (const ByteInterval& s : spans) {
    if (!merged.empty() && s.begin <= merged.back().end) {
      merged.back().end = std::max(merged.back().end, s.end);
    } else {
      merged.push_back(s);
    }
  }

  // Bytes of `self` covered by the union.
  std::uint64_t covered = 0;
  for (const ByteInterval& iv : self.data) {
    for (const ByteInterval& m : merged) {
      const std::uint64_t lo = std::max(iv.begin, m.begin);
      const std::uint64_t hi = std::min(iv.end, m.end);
      if (hi > lo) covered += hi - lo;
    }
  }
  return static_cast<double>(covered) / static_cast<double>(total);
}

std::optional<double> GroundTruth::object_dom(web::ObjectId object) const {
  const ResponseInstance* primary = primary_instance(object);
  if (primary == nullptr || primary->data.empty()) return std::nullopt;
  return degree_of_multiplexing(primary->id);
}

bool GroundTruth::any_serialized_instance(web::ObjectId object) const {
  for (const ResponseInstance* inst : instances_of(object)) {
    if (inst->complete && !inst->data.empty() &&
        degree_of_multiplexing(inst->id) == 0.0) {
      return true;
    }
  }
  return false;
}

}  // namespace h2priv::analysis
