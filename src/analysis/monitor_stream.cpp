#include "h2priv/analysis/monitor_stream.hpp"

namespace h2priv::analysis {

void MonitorStream::on_packet(const PacketObservation& pkt, util::BytesView payload,
                              util::TimePoint now) {
  if (payload.empty()) return;
  const util::Bytes delivered = reassembly_.offer(pkt.seq, payload);
  if (delivered.empty()) return;
  pending_.insert(pending_.end(), delivered.begin(), delivered.end());
  scan(now);
}

void MonitorStream::scan(util::TimePoint now) {
  std::size_t pos = 0;
  for (;;) {
    const util::BytesView window(pending_.data() + pos, pending_.size() - pos);
    tls::RecordHeader hdr{};
    if (!tls::parse_header(window, hdr)) break;
    if (window.size() < tls::kHeaderBytes + hdr.ciphertext_len) break;

    RecordObservation rec;
    rec.time = now;
    rec.dir = dir_;
    rec.type = hdr.type;
    rec.ciphertext_len = hdr.ciphertext_len;
    rec.stream_offset = scan_offset_ + pos;
    records_.push_back(rec);
    if (on_record) on_record(rec);
    pos += tls::kHeaderBytes + hdr.ciphertext_len;
  }
  pending_.erase(pending_.begin(), pending_.begin() + static_cast<std::ptrdiff_t>(pos));
  scan_offset_ += pos;
}

}  // namespace h2priv::analysis
