// Closed-world webpage fingerprinting over burst-size profiles — the attack
// family the paper builds on ([2]-[12]): given labelled training traces of K
// known pages, classify a fresh encrypted trace by its object-size profile.
//
// The profile of a trace is the multiset of burst body estimates; distance
// between profiles is a greedy minimal-matching cost (absolute size
// differences, unmatched bursts penalized). Nearest-centroid over the
// training traces classifies. Serialized traffic gives crisp profiles;
// multiplexing blurs them — quantifying exactly how much privacy
// multiplexing buys against this classifier family, and how much the active
// attack takes back.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "h2priv/analysis/estimator.hpp"

namespace h2priv::analysis {

/// A trace reduced to its burst-size profile (sorted).
using SizeProfile = std::vector<std::size_t>;

[[nodiscard]] SizeProfile profile_from_bursts(const std::vector<EstimatedObject>& bursts);

// --- feature families --------------------------------------------------------
//
// A feature vector is still a SizeProfile — a sorted multiset of integers —
// so every classifier and profile_distance() work unchanged. Families beyond
// the raw burst sizes are tagged into disjoint integer ranges far above any
// plausible burst size (bursts stay < 2^40): each histogram entry encodes
// base + bin * 2^28 + count. Within one family+bin, two traces' entries sit
// well inside profile_distance's factor-of-two match window, so the sweep
// pairs them up and the matching cost reduces to the L1 histogram distance
// Σ|count_a - count_b|. All 16 bins are always emitted (count 0 included) so
// the pairing never slips. Everything is integer-only and deterministic.

/// Selectable feature families (bitmask).
enum Feature : unsigned {
  kFeatureBursts = 1u << 0,      ///< burst body estimates (the classic profile)
  kFeatureGapHist = 1u << 1,     ///< inter-burst idle-gap timing histogram
  kFeatureRecordHist = 1u << 2,  ///< TLS record ciphertext-size histogram
};

inline constexpr std::size_t kFeatureBins = 16;
inline constexpr std::size_t kFeatureBinStride = std::size_t{1} << 28;
inline constexpr std::size_t kGapFeatureBase = std::size_t{1} << 44;
inline constexpr std::size_t kRecordFeatureBase = std::size_t{1} << 46;

/// Log2 histogram of the idle gaps between consecutive bursts, measured in
/// milliseconds (bin = bit_width(gap_ms), clamped to 15): bin 0 is sub-ms,
/// bin 15 is >= 16.4 s. Always 16 entries, tagged at kGapFeatureBase.
[[nodiscard]] SizeProfile gap_features(const std::vector<EstimatedObject>& bursts);

/// Log2 histogram of TLS record ciphertext sizes (bin = bit_width(len),
/// clamped to 15 — records top out at 16 KiB + overhead). Always 16
/// entries, tagged at kRecordFeatureBase.
[[nodiscard]] SizeProfile record_size_features(
    std::span<const RecordObservation> records);

/// Assembles the sorted feature vector for the families selected in
/// `features` (Feature bits OR'd together).
[[nodiscard]] SizeProfile build_feature_profile(
    unsigned features, const std::vector<EstimatedObject>& bursts,
    std::span<const RecordObservation> records);

/// Greedy matching cost between two profiles; symmetric, >= 0, 0 iff equal.
/// Unmatched bursts cost their full size.
[[nodiscard]] double profile_distance(const SizeProfile& a, const SizeProfile& b);

class Fingerprinter {
 public:
  /// Adds one labelled training trace.
  void train(const std::string& label, SizeProfile profile);

  /// Nearest-training-trace classification; empty string if untrained.
  [[nodiscard]] std::string classify(const SizeProfile& probe) const;

  /// Distance to the best and second-best labels (classifier confidence).
  struct Verdict {
    std::string label;
    double best_distance = 0;
    double runner_up_distance = 0;
  };
  [[nodiscard]] Verdict classify_with_margin(const SizeProfile& probe) const;

  /// k-nearest-neighbour vote: the k closest training traces vote and the
  /// majority label wins. Ties break on smaller summed distance among the
  /// tied labels, then on the lexicographically smaller label — so the
  /// verdict is deterministic for any training-trace insertion order.
  /// k == 1 reduces to classify(); empty string if untrained or k == 0.
  [[nodiscard]] std::string classify_knn(const SizeProfile& probe,
                                         std::size_t k) const;

  /// classify_knn plus the vote tally behind it (classifier confidence:
  /// votes/k ranks verdicts, total_distance breaks ranking ties).
  struct KnnVerdict {
    std::string label;
    std::size_t votes = 0;       ///< neighbours that voted for `label`
    std::size_t k = 0;           ///< effective neighbourhood size (<= trace count)
    double total_distance = 0;   ///< summed distance of those votes
  };
  [[nodiscard]] KnnVerdict classify_knn_with_votes(const SizeProfile& probe,
                                                   std::size_t k) const;

  [[nodiscard]] std::size_t trace_count() const noexcept { return traces_.size(); }

 private:
  struct Trace {
    std::string label;
    SizeProfile profile;
  };
  std::vector<Trace> traces_;
};

/// Nearest-centroid fingerprinting: each label is folded into a single
/// centroid profile — the per-position integer median of its training
/// profiles, each resampled to the label's median profile length. Memory
/// and classification cost are O(labels), not O(training traces), and the
/// centroid is integer-only and independent of training order, so the model
/// itself is deterministic (the determinism linter's SIM_CRITICAL rules
/// apply to the corpus pipeline built on top of it).
class CentroidModel {
 public:
  /// Adds one labelled training trace and refolds that label's centroid.
  void train(const std::string& label, SizeProfile profile);

  /// Nearest-centroid classification; empty string if untrained. Ties break
  /// on the lexicographically smaller label.
  [[nodiscard]] std::string classify(const SizeProfile& probe) const;

  /// Nearest-centroid verdict with best / runner-up centroid distances
  /// (same confidence shape as Fingerprinter::classify_with_margin).
  [[nodiscard]] Fingerprinter::Verdict classify_with_margin(
      const SizeProfile& probe) const;

  /// The folded centroid for `label`, or nullptr if never trained.
  [[nodiscard]] const SizeProfile* centroid(const std::string& label) const;

  [[nodiscard]] std::size_t label_count() const noexcept { return labels_.size(); }

 private:
  struct Label {
    std::vector<SizeProfile> traces;
    SizeProfile centroid;
  };
  std::map<std::string, Label> labels_;
};

}  // namespace h2priv::analysis
