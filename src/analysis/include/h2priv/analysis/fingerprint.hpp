// Closed-world webpage fingerprinting over burst-size profiles — the attack
// family the paper builds on ([2]-[12]): given labelled training traces of K
// known pages, classify a fresh encrypted trace by its object-size profile.
//
// The profile of a trace is the multiset of burst body estimates; distance
// between profiles is a greedy minimal-matching cost (absolute size
// differences, unmatched bursts penalized). Nearest-centroid over the
// training traces classifies. Serialized traffic gives crisp profiles;
// multiplexing blurs them — quantifying exactly how much privacy
// multiplexing buys against this classifier family, and how much the active
// attack takes back.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "h2priv/analysis/estimator.hpp"

namespace h2priv::analysis {

/// A trace reduced to its burst-size profile (sorted).
using SizeProfile = std::vector<std::size_t>;

[[nodiscard]] SizeProfile profile_from_bursts(const std::vector<EstimatedObject>& bursts);

/// Greedy matching cost between two profiles; symmetric, >= 0, 0 iff equal.
/// Unmatched bursts cost their full size.
[[nodiscard]] double profile_distance(const SizeProfile& a, const SizeProfile& b);

class Fingerprinter {
 public:
  /// Adds one labelled training trace.
  void train(const std::string& label, SizeProfile profile);

  /// Nearest-training-trace classification; empty string if untrained.
  [[nodiscard]] std::string classify(const SizeProfile& probe) const;

  /// Distance to the best and second-best labels (classifier confidence).
  struct Verdict {
    std::string label;
    double best_distance = 0;
    double runner_up_distance = 0;
  };
  [[nodiscard]] Verdict classify_with_margin(const SizeProfile& probe) const;

  [[nodiscard]] std::size_t trace_count() const noexcept { return traces_.size(); }

 private:
  struct Trace {
    std::string label;
    SizeProfile profile;
  };
  std::vector<Trace> traces_;
};

}  // namespace h2priv::analysis
