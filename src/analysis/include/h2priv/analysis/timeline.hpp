// ASCII timeline renderer: draws which object occupied the server->client
// byte stream over a window, one lane per response instance — the visual
// form of the paper's Figures 2-4 and 6.
//
// Lanes are labelled with the object id; '#' marks bytes of that instance,
// '.' marks the instance's span where other instances' bytes sit (the
// interleaving the DoM metric measures).
#pragma once

#include <string>

#include "h2priv/analysis/ground_truth.hpp"

namespace h2priv::analysis {

struct TimelineOptions {
  /// Byte-stream window to render; end 0 = up to the last recorded byte.
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  /// Character-cell width of the rendered lanes.
  int width = 96;
  /// Only lanes whose instances overlap the window and carry at least this
  /// many bytes are drawn.
  std::uint64_t min_bytes = 1;
  /// Cap on the number of lanes (most-overlapping first wins).
  int max_lanes = 16;
  /// Instances of this object are always drawn, regardless of the cap
  /// (0 = no focus object).
  web::ObjectId focus_object = 0;
};

/// Renders the instances of `truth` over the window as a multi-lane chart.
[[nodiscard]] std::string render_timeline(const GroundTruth& truth,
                                          const TimelineOptions& options = {});

/// Convenience: a window centred on one object's primary serving (padding
/// its span by `margin_fraction` on both sides).
[[nodiscard]] std::string render_around_object(const GroundTruth& truth,
                                               web::ObjectId object,
                                               double margin_fraction = 0.35,
                                               int width = 96);

/// Like render_around_object, but centred on the object's LAST complete
/// fully-serialized serving (the post-reset clean-slate copy of Fig. 6);
/// falls back to the primary serving if no such copy exists.
[[nodiscard]] std::string render_around_serialized_copy(const GroundTruth& truth,
                                                        web::ObjectId object,
                                                        double margin_fraction = 2.0,
                                                        int width = 96);

}  // namespace h2priv::analysis
