// What the on-path adversary is allowed to see.
//
// PacketObservation: cleartext TCP/IP header fields plus sizes.
// RecordObservation: TLS record header (type + length) located at a TCP
// stream offset — the output of reassembling the visible byte stream and
// reading the 5-byte record headers, i.e. tshark's
// `ssl.record.content_type` view. Neither type carries payload bytes:
// opacity is enforced structurally.
#pragma once

#include <cstdint>

#include "h2priv/net/packet.hpp"
#include "h2priv/tls/record.hpp"
#include "h2priv/util/units.hpp"

namespace h2priv::analysis {

struct PacketObservation {
  util::TimePoint time;
  net::Direction dir = net::Direction::kClientToServer;
  std::int64_t wire_size = 0;  // IP + TCP header + payload
  std::uint64_t seq = 0;
  std::uint64_t ack = 0;
  std::uint8_t flags = 0;
  std::size_t payload_len = 0;
};

struct RecordObservation {
  util::TimePoint time;  // when the record became fully visible on the wire
  net::Direction dir = net::Direction::kClientToServer;
  tls::ContentType type = tls::ContentType::kApplicationData;
  std::size_t ciphertext_len = 0;
  std::uint64_t stream_offset = 0;  // offset of the record header in the TCP stream

  /// Plaintext payload estimate (ciphertext minus the AEAD tag).
  [[nodiscard]] std::size_t plaintext_estimate() const noexcept {
    return ciphertext_len >= tls::kAeadOverhead ? ciphertext_len - tls::kAeadOverhead : 0;
  }
};

}  // namespace h2priv::analysis
