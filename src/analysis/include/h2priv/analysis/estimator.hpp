// Adversary-side object-size estimation from encrypted records (Fig. 1).
//
// Once transmissions are serialized, one response = a small record carrying
// the response HEADERS frame followed by the DATA records of the body. The
// small record plays the role of the paper's sub-MTU "delimiting packet":
// every record below `delimiter_max_bytes` starts a new object burst. Long
// idle gaps close bursts too (phase boundaries). Wire bytes are converted to
// a body-size estimate (subtracting per-record AEAD and per-frame HTTP/2
// overhead) and matched against a pre-compiled size catalog — the paper's
// "image size to political party mapping".
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "h2priv/analysis/observation.hpp"
#include "h2priv/util/units.hpp"

namespace h2priv::analysis {

struct EstimatedObject {
  util::TimePoint first_record{};
  util::TimePoint last_record{};
  std::size_t record_count = 0;
  std::size_t wire_bytes = 0;       // sum of ciphertext lengths
  std::size_t body_estimate = 0;    // after overhead subtraction
};

struct BurstConfig {
  /// Records at or below this ciphertext size are header/control records:
  /// each one delimits (starts) a new object burst and is excluded from the
  /// body estimate.
  std::size_t delimiter_max_bytes = 150;
  /// Idle gap that always separates bursts (phase boundaries), even without
  /// a delimiter record.
  util::Duration gap_threshold{util::milliseconds(300)};
  /// Bursts smaller than this are control chatter, not objects.
  std::size_t min_body_bytes = 600;
  /// Per-DATA-frame framing overhead to subtract (HTTP/2 frame header; one
  /// DATA frame per record in this server's write pattern).
  std::size_t frame_header_bytes = 9;
};

/// Segments server->client application-data records into object bursts.
/// Records must be in stream order (as MonitorStream emits them).
[[nodiscard]] std::vector<EstimatedObject> segment_bursts(
    std::span<const RecordObservation> records, const BurstConfig& config = {});

/// The adversary's pre-compiled size -> identity mapping.
class SizeCatalog {
 public:
  void add(std::string label, std::size_t body_size);

  struct Entry {
    std::string label;
    std::size_t body_size = 0;
  };

  /// Returns the unique catalog entry within tolerance of `estimate`, or
  /// nullopt if none or more than one matches. Tolerance is
  /// max(abs_tolerance, frac_tolerance * body_size). The defaults match the
  /// delimiter-based estimator's accuracy (within a few bytes).
  [[nodiscard]] std::optional<Entry> match(std::size_t estimate,
                                           std::size_t abs_tolerance = 150,
                                           double frac_tolerance = 0.012) const;

  [[nodiscard]] const std::vector<Entry>& entries() const noexcept { return entries_; }

 private:
  std::vector<Entry> entries_;
};

}  // namespace h2priv::analysis
