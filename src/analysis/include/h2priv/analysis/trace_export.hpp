// Trace export: the adversary-visible observations (packets, TLS records)
// and the simulator-side ground truth as CSV, for offline analysis with
// external tooling (pandas, Wireshark-style workflows).
#pragma once

#include <iosfwd>
#include <span>

#include "h2priv/analysis/ground_truth.hpp"
#include "h2priv/analysis/observation.hpp"

namespace h2priv::analysis {

/// time_s,dir,wire_size,seq,ack,flags,payload_len
void write_packets_csv(std::ostream& os, std::span<const PacketObservation> packets);

/// time_s,dir,content_type,ciphertext_len,plaintext_estimate,stream_offset
void write_records_csv(std::ostream& os, std::span<const RecordObservation> records);

/// instance,object,stream,duplicate,complete,dom,begin,end — one row per
/// recorded DATA interval (the oracle view; never available to an adversary).
void write_ground_truth_csv(std::ostream& os, const GroundTruth& truth);

}  // namespace h2priv::analysis
