// Simulator-side oracle: which server->client TCP stream bytes belong to
// which response instance. The adversary NEVER sees this — it exists to
// compute the paper's "degree of multiplexing" metric and to score the
// adversary's predictions.
//
// A *response instance* is one served copy of an object on one HTTP/2
// stream. Re-requested copies (the paper's "retransmitted objects") are
// separate instances of the same object and interleave with each other —
// exactly the effect Sections IV-B/IV-C wrestle with.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "h2priv/h2/connection.hpp"
#include "h2priv/web/site.hpp"

namespace h2priv::analysis {

using InstanceId = std::uint64_t;

struct ByteInterval {
  std::uint64_t begin = 0;  // TCP stream offset (server->client), half-open
  std::uint64_t end = 0;
  [[nodiscard]] std::uint64_t size() const noexcept { return end - begin; }
};

struct ResponseInstance {
  InstanceId id = 0;
  web::ObjectId object_id = 0;
  std::uint32_t stream_id = 0;
  bool duplicate = false;  ///< a re-request copy, not the first serving
  std::vector<ByteInterval> data;     // DATA frame wire ranges
  std::vector<ByteInterval> headers;  // HEADERS frame wire ranges
  bool complete = false;              // served to END_STREAM

  [[nodiscard]] std::uint64_t data_bytes() const noexcept;
  /// [first data byte, last data byte) — empty nullopt if no data recorded.
  [[nodiscard]] std::optional<ByteInterval> span() const noexcept;
};

class GroundTruth {
 public:
  InstanceId register_instance(web::ObjectId object, std::uint32_t stream_id,
                               bool duplicate);
  void record_data(InstanceId id, h2::WireSpan span);
  void record_headers(InstanceId id, h2::WireSpan span);
  void mark_complete(InstanceId id);

  [[nodiscard]] const std::vector<ResponseInstance>& instances() const noexcept {
    return instances_;
  }
  [[nodiscard]] const ResponseInstance& instance(InstanceId id) const;

  /// First (non-duplicate) instance of an object, if any.
  [[nodiscard]] const ResponseInstance* primary_instance(web::ObjectId object) const;
  /// All instances (copies included) of an object.
  [[nodiscard]] std::vector<const ResponseInstance*> instances_of(
      web::ObjectId object) const;

  /// The paper's metric: the fraction of this instance's DATA bytes that lie
  /// within the transmission span of some *other* instance on the same TCP
  /// stream. 0 == fully serialized; ~1 == thoroughly interleaved.
  [[nodiscard]] double degree_of_multiplexing(InstanceId id) const;

  /// DoM of the object's primary instance; nullopt if never served.
  [[nodiscard]] std::optional<double> object_dom(web::ObjectId object) const;

  /// True if *any* complete instance of the object was fully serialized.
  /// (Fig. 5's "success attributable to a retransmitted copy" counts these.)
  [[nodiscard]] bool any_serialized_instance(web::ObjectId object) const;

 private:
  std::vector<ResponseInstance> instances_;
};

}  // namespace h2priv::analysis
