// Adversary-side TCP stream reconstruction and TLS record boundary
// extraction for one direction of one connection.
//
// The monitor reads cleartext TCP headers off transiting packets, reassembles
// the byte stream (absorbing retransmissions exactly as tshark's TCP
// dissector does), and scans the 5-byte TLS record headers to produce
// RecordObservations. Payload bytes stay opaque — they are carried only far
// enough to locate the next header.
#pragma once

#include <functional>
#include <vector>

#include "h2priv/analysis/observation.hpp"
#include "h2priv/tcp/reassembly.hpp"
#include "h2priv/util/bytes.hpp"

namespace h2priv::analysis {

class MonitorStream {
 public:
  explicit MonitorStream(net::Direction dir) noexcept : dir_(dir) {}

  /// Feeds one observed packet (already peeked). Emits RecordObservations
  /// for every record that became complete.
  void on_packet(const PacketObservation& pkt, util::BytesView payload,
                 util::TimePoint now);

  /// Fires for each completed record, in stream order.
  std::function<void(const RecordObservation&)> on_record;

  [[nodiscard]] const std::vector<RecordObservation>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::uint64_t stream_bytes() const noexcept { return scan_offset_ +
                                           pending_.size(); }

 private:
  void scan(util::TimePoint now);

  net::Direction dir_;
  tcp::Reassembly reassembly_{1};  // data starts at seq 1 (SYN occupies 0)
  util::Bytes pending_;            // in-order bytes not yet consumed by the scanner
  std::uint64_t scan_offset_ = 0;  // stream offset of pending_[0]
  std::vector<RecordObservation> records_;
};

}  // namespace h2priv::analysis
