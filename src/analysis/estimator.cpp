#include "h2priv/analysis/estimator.hpp"

#include <algorithm>

namespace h2priv::analysis {

std::vector<EstimatedObject> segment_bursts(std::span<const RecordObservation> records,
                                            const BurstConfig& config) {
  std::vector<EstimatedObject> bursts;
  EstimatedObject current;
  bool open = false;

  const auto close_current = [&] {
    if (!open) return;
    // wire bytes exclude the 5-byte record headers; subtract the AEAD tag
    // per record and one HTTP/2 frame header per (DATA) record.
    const std::size_t overhead =
        current.record_count * (tls::kAeadOverhead + config.frame_header_bytes);
    current.body_estimate =
        current.wire_bytes > overhead ? current.wire_bytes - overhead : 0;
    if (current.body_estimate >= config.min_body_bytes) bursts.push_back(current);
    open = false;
  };

  for (const RecordObservation& rec : records) {
    if (rec.dir != net::Direction::kServerToClient ||
        rec.type != tls::ContentType::kApplicationData) {
      continue;
    }
    const bool is_delimiter = rec.ciphertext_len <= config.delimiter_max_bytes;
    if (open && (is_delimiter || rec.time - current.last_record > config.gap_threshold)) {
      close_current();
    }
    if (is_delimiter) {
      // The header record opens the next burst but contributes no body.
      current = EstimatedObject{};
      current.first_record = rec.time;
      current.last_record = rec.time;
      open = true;
      continue;
    }
    if (!open) {
      current = EstimatedObject{};
      current.first_record = rec.time;
      open = true;
    }
    current.last_record = rec.time;
    ++current.record_count;
    current.wire_bytes += rec.ciphertext_len;
  }
  close_current();
  return bursts;
}

void SizeCatalog::add(std::string label, std::size_t body_size) {
  entries_.push_back(Entry{std::move(label), body_size});
}

std::optional<SizeCatalog::Entry> SizeCatalog::match(std::size_t estimate,
                                                     std::size_t abs_tolerance,
                                                     double frac_tolerance) const {
  const Entry* found = nullptr;
  for (const Entry& e : entries_) {
    const std::size_t tol = std::max(
        abs_tolerance,
        static_cast<std::size_t>(frac_tolerance * static_cast<double>(e.body_size)));
    const std::size_t lo = e.body_size > tol ? e.body_size - tol : 0;
    const std::size_t hi = e.body_size + tol;
    if (estimate >= lo && estimate <= hi) {
      if (found != nullptr) return std::nullopt;  // ambiguous
      found = &e;
    }
  }
  if (found == nullptr) return std::nullopt;
  return *found;
}

}  // namespace h2priv::analysis
