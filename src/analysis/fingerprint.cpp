#include "h2priv/analysis/fingerprint.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <limits>

namespace h2priv::analysis {

SizeProfile profile_from_bursts(const std::vector<EstimatedObject>& bursts) {
  SizeProfile profile;
  profile.reserve(bursts.size());
  for (const EstimatedObject& b : bursts) profile.push_back(b.body_estimate);
  std::sort(profile.begin(), profile.end());
  return profile;
}

namespace {

/// Clamped log2 bin: bit_width of the value, capped at kFeatureBins - 1.
[[nodiscard]] std::size_t log2_bin(std::uint64_t v) noexcept {
  return std::min<std::size_t>(kFeatureBins - 1,
                               static_cast<std::size_t>(std::bit_width(v)));
}

/// Renders a 16-bin count array as tagged profile entries (all bins, count 0
/// included, so two traces' histograms always pair up bin-for-bin in the
/// profile_distance sweep).
[[nodiscard]] SizeProfile tag_bins(std::size_t base,
                                   const std::array<std::size_t, kFeatureBins>& bins) {
  SizeProfile out;
  out.reserve(kFeatureBins);
  for (std::size_t bin = 0; bin < kFeatureBins; ++bin) {
    out.push_back(base + bin * kFeatureBinStride + bins[bin]);
  }
  return out;
}

}  // namespace

SizeProfile gap_features(const std::vector<EstimatedObject>& bursts) {
  std::array<std::size_t, kFeatureBins> bins{};
  for (std::size_t i = 1; i < bursts.size(); ++i) {
    const std::int64_t gap_ns =
        bursts[i].first_record.ns - bursts[i - 1].last_record.ns;
    const std::uint64_t gap_ms =
        gap_ns > 0 ? static_cast<std::uint64_t>(gap_ns) / 1'000'000u : 0;
    ++bins[log2_bin(gap_ms)];
  }
  return tag_bins(kGapFeatureBase, bins);
}

SizeProfile record_size_features(std::span<const RecordObservation> records) {
  std::array<std::size_t, kFeatureBins> bins{};
  for (const RecordObservation& r : records) {
    ++bins[log2_bin(static_cast<std::uint64_t>(r.ciphertext_len))];
  }
  return tag_bins(kRecordFeatureBase, bins);
}

SizeProfile build_feature_profile(unsigned features,
                                  const std::vector<EstimatedObject>& bursts,
                                  std::span<const RecordObservation> records) {
  SizeProfile profile;
  if ((features & kFeatureBursts) != 0) profile = profile_from_bursts(bursts);
  if ((features & kFeatureGapHist) != 0) {
    const SizeProfile gaps = gap_features(bursts);
    profile.insert(profile.end(), gaps.begin(), gaps.end());
  }
  if ((features & kFeatureRecordHist) != 0) {
    const SizeProfile sizes = record_size_features(records);
    profile.insert(profile.end(), sizes.begin(), sizes.end());
  }
  std::sort(profile.begin(), profile.end());
  return profile;
}

double profile_distance(const SizeProfile& a, const SizeProfile& b) {
  // Both sorted: sweep-merge greedy matching. Pairs within a factor-of-two
  // window match at |Δsize|; leftovers cost their own size.
  double cost = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const auto x = static_cast<double>(a[i]);
    const auto y = static_cast<double>(b[j]);
    if (x < y * 0.5) {
      cost += x;  // unmatched small burst in a
      ++i;
    } else if (y < x * 0.5) {
      cost += y;
      ++j;
    } else {
      cost += std::abs(x - y);
      ++i;
      ++j;
    }
  }
  for (; i < a.size(); ++i) cost += static_cast<double>(a[i]);
  for (; j < b.size(); ++j) cost += static_cast<double>(b[j]);
  return cost;
}

void Fingerprinter::train(const std::string& label, SizeProfile profile) {
  traces_.push_back(Trace{label, std::move(profile)});
}

Fingerprinter::Verdict Fingerprinter::classify_with_margin(
    const SizeProfile& probe) const {
  Verdict v;
  v.best_distance = std::numeric_limits<double>::infinity();
  v.runner_up_distance = std::numeric_limits<double>::infinity();
  for (const Trace& t : traces_) {
    const double d = profile_distance(probe, t.profile);
    if (d < v.best_distance) {
      if (t.label != v.label) v.runner_up_distance = v.best_distance;
      v.best_distance = d;
      v.label = t.label;
    } else if (t.label != v.label && d < v.runner_up_distance) {
      v.runner_up_distance = d;
    }
  }
  return v;
}

std::string Fingerprinter::classify(const SizeProfile& probe) const {
  return classify_with_margin(probe).label;
}

std::string Fingerprinter::classify_knn(const SizeProfile& probe,
                                        std::size_t k) const {
  return classify_knn_with_votes(probe, k).label;
}

Fingerprinter::KnnVerdict Fingerprinter::classify_knn_with_votes(
    const SizeProfile& probe, std::size_t k) const {
  if (traces_.empty() || k == 0) return {};
  k = std::min(k, traces_.size());

  std::vector<std::size_t> order(traces_.size());
  std::vector<double> distance(traces_.size());
  for (std::size_t i = 0; i < traces_.size(); ++i) {
    order[i] = i;
    distance[i] = profile_distance(probe, traces_[i].profile);
  }
  // Total order on (distance, label, index) keeps the neighbour set — and
  // with it the vote — independent of training insertion order.
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(k), order.end(),
                    [&](std::size_t a, std::size_t b) {
                      if (distance[a] != distance[b]) {
                        return distance[a] < distance[b];
                      }
                      if (traces_[a].label != traces_[b].label) {
                        return traces_[a].label < traces_[b].label;
                      }
                      return a < b;
                    });

  struct Tally {
    std::size_t votes = 0;
    double total_distance = 0;
  };
  std::map<std::string, Tally> tallies;
  for (std::size_t n = 0; n < k; ++n) {
    Tally& t = tallies[traces_[order[n]].label];
    ++t.votes;
    t.total_distance += distance[order[n]];
  }
  KnnVerdict verdict;
  verdict.k = k;
  Tally best;
  for (const auto& [label, t] : tallies) {
    // Map iteration is label-ascending, so strict improvement implements the
    // lexicographic tie-break for free.
    if (verdict.label.empty() || t.votes > best.votes ||
        (t.votes == best.votes && t.total_distance < best.total_distance)) {
      verdict.label = label;
      best = t;
    }
  }
  verdict.votes = best.votes;
  verdict.total_distance = best.total_distance;
  return verdict;
}

namespace {

/// Lower median of `v` (sorted in place); integer-only, deterministic.
std::size_t lower_median(std::vector<std::size_t>& v) {
  std::sort(v.begin(), v.end());
  return v[(v.size() - 1) / 2];
}

/// Folds a label's training profiles into one centroid: resample each
/// profile to the label's (lower-)median length, then take the per-position
/// lower median. Sampling sorted profiles at non-decreasing fractional
/// positions keeps the centroid sorted.
SizeProfile fold_centroid(const std::vector<SizeProfile>& traces) {
  std::vector<std::size_t> lengths;
  lengths.reserve(traces.size());
  for (const SizeProfile& t : traces) lengths.push_back(t.size());
  const std::size_t target = lower_median(lengths);
  SizeProfile centroid(target);
  std::vector<std::size_t> column;
  for (std::size_t i = 0; i < target; ++i) {
    column.clear();
    for (const SizeProfile& t : traces) {
      if (t.empty()) continue;
      column.push_back(t[i * t.size() / target]);
    }
    if (!column.empty()) centroid[i] = lower_median(column);
  }
  return centroid;
}

}  // namespace

void CentroidModel::train(const std::string& label, SizeProfile profile) {
  Label& entry = labels_[label];
  entry.traces.push_back(std::move(profile));
  entry.centroid = fold_centroid(entry.traces);
}

std::string CentroidModel::classify(const SizeProfile& probe) const {
  return classify_with_margin(probe).label;
}

Fingerprinter::Verdict CentroidModel::classify_with_margin(
    const SizeProfile& probe) const {
  Fingerprinter::Verdict v;
  v.best_distance = std::numeric_limits<double>::infinity();
  v.runner_up_distance = std::numeric_limits<double>::infinity();
  for (const auto& [label, entry] : labels_) {
    const double d = profile_distance(probe, entry.centroid);
    if (d < v.best_distance) {  // strict: first (smallest) label wins ties
      v.runner_up_distance = v.best_distance;
      v.best_distance = d;
      v.label = label;
    } else if (d < v.runner_up_distance) {
      v.runner_up_distance = d;
    }
  }
  return v;
}

const SizeProfile* CentroidModel::centroid(const std::string& label) const {
  const auto it = labels_.find(label);
  return it == labels_.end() ? nullptr : &it->second.centroid;
}

}  // namespace h2priv::analysis
