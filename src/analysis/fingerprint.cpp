#include "h2priv/analysis/fingerprint.hpp"

#include <algorithm>
#include <limits>

namespace h2priv::analysis {

SizeProfile profile_from_bursts(const std::vector<EstimatedObject>& bursts) {
  SizeProfile profile;
  profile.reserve(bursts.size());
  for (const EstimatedObject& b : bursts) profile.push_back(b.body_estimate);
  std::sort(profile.begin(), profile.end());
  return profile;
}

double profile_distance(const SizeProfile& a, const SizeProfile& b) {
  // Both sorted: sweep-merge greedy matching. Pairs within a factor-of-two
  // window match at |Δsize|; leftovers cost their own size.
  double cost = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const auto x = static_cast<double>(a[i]);
    const auto y = static_cast<double>(b[j]);
    if (x < y * 0.5) {
      cost += x;  // unmatched small burst in a
      ++i;
    } else if (y < x * 0.5) {
      cost += y;
      ++j;
    } else {
      cost += std::abs(x - y);
      ++i;
      ++j;
    }
  }
  for (; i < a.size(); ++i) cost += static_cast<double>(a[i]);
  for (; j < b.size(); ++j) cost += static_cast<double>(b[j]);
  return cost;
}

void Fingerprinter::train(const std::string& label, SizeProfile profile) {
  traces_.push_back(Trace{label, std::move(profile)});
}

Fingerprinter::Verdict Fingerprinter::classify_with_margin(
    const SizeProfile& probe) const {
  Verdict v;
  v.best_distance = std::numeric_limits<double>::infinity();
  v.runner_up_distance = std::numeric_limits<double>::infinity();
  for (const Trace& t : traces_) {
    const double d = profile_distance(probe, t.profile);
    if (d < v.best_distance) {
      if (t.label != v.label) v.runner_up_distance = v.best_distance;
      v.best_distance = d;
      v.label = t.label;
    } else if (t.label != v.label && d < v.runner_up_distance) {
      v.runner_up_distance = d;
    }
  }
  return v;
}

std::string Fingerprinter::classify(const SizeProfile& probe) const {
  return classify_with_margin(probe).label;
}

}  // namespace h2priv::analysis
