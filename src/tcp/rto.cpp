#include "h2priv/tcp/rto.hpp"

#include <algorithm>
#include <cstdlib>

namespace h2priv::tcp {

RtoEstimator::RtoEstimator(RtoConfig config) noexcept
    : config_(config), base_rto_(config.initial) {}

void RtoEstimator::sample(util::Duration rtt) noexcept {
  if (!has_sample_) {
    srtt_ = rtt;
    rttvar_ = rtt / 2;
    has_sample_ = true;
  } else {
    // RFC 6298: rttvar = 3/4 rttvar + 1/4 |srtt - rtt|; srtt = 7/8 srtt + 1/8 rtt
    const util::Duration err{std::abs(srtt_.ns - rtt.ns)};
    rttvar_ = {(3 * rttvar_.ns + err.ns) / 4};
    srtt_ = {(7 * srtt_.ns + rtt.ns) / 8};
  }
  base_rto_ = srtt_ + std::max(util::Duration{4 * rttvar_.ns}, util::milliseconds(10));
}

void RtoEstimator::backoff() noexcept {
  if (backoff_shift_ < 16) ++backoff_shift_;
}

util::Duration RtoEstimator::rto() const noexcept {
  util::Duration v = base_rto_;
  for (int i = 0; i < backoff_shift_ && v < config_.max; ++i) v = v * 2;
  return std::clamp(v, config_.min, config_.max);
}

}  // namespace h2priv::tcp
