#include "h2priv/tcp/send_buffer.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace h2priv::tcp {

std::uint64_t SendBuffer::append(util::BytesView data) {
  const std::uint64_t offset = end();
  // Reclaim the acked prefix once it dominates the live bytes; sliding at
  // most `live()` bytes after at least as many were acked keeps the cost
  // amortized O(1) and the live region always contiguous.
  if (head_ > 0 && head_ >= live()) {
    std::memmove(buf_.data(), buf_.data() + head_, live());
    buf_.resize(live());
    head_ = 0;
  }
  buf_.insert(buf_.end(), data.begin(), data.end());
  return offset;
}

util::BytesView SendBuffer::read_view(std::uint64_t offset,
                                      std::size_t max_len) const {
  if (offset < base_ || offset > end()) {
    throw std::out_of_range("SendBuffer::read: offset outside buffered range");
  }
  const std::size_t start = head_ + static_cast<std::size_t>(offset - base_);
  const std::size_t n = std::min(max_len, buf_.size() - start);
  return {buf_.data() + start, n};
}

util::Bytes SendBuffer::read(std::uint64_t offset, std::size_t max_len) const {
  const util::BytesView v = read_view(offset, max_len);
  return {v.begin(), v.end()};
}

void SendBuffer::ack(std::uint64_t new_acked) {
  if (new_acked <= base_) return;
  if (new_acked > end()) throw std::out_of_range("SendBuffer::ack: beyond enqueued data");
  head_ += static_cast<std::size_t>(new_acked - base_);
  base_ = new_acked;
}

}  // namespace h2priv::tcp
