#include "h2priv/tcp/send_buffer.hpp"

#include <algorithm>
#include <stdexcept>

namespace h2priv::tcp {

std::uint64_t SendBuffer::append(util::BytesView data) {
  const std::uint64_t offset = end();
  buf_.insert(buf_.end(), data.begin(), data.end());
  return offset;
}

util::Bytes SendBuffer::read(std::uint64_t offset, std::size_t max_len) const {
  if (offset < base_ || offset > end()) {
    throw std::out_of_range("SendBuffer::read: offset outside buffered range");
  }
  const std::size_t start = static_cast<std::size_t>(offset - base_);
  const std::size_t n = std::min(max_len, buf_.size() - start);
  util::Bytes out(n);
  std::copy_n(buf_.begin() + static_cast<std::ptrdiff_t>(start), n, out.begin());
  return out;
}

void SendBuffer::ack(std::uint64_t new_acked) {
  if (new_acked <= base_) return;
  if (new_acked > end()) throw std::out_of_range("SendBuffer::ack: beyond enqueued data");
  buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(new_acked - base_));
  base_ = new_acked;
}

}  // namespace h2priv::tcp
