#include "h2priv/tcp/congestion.hpp"

#include <algorithm>

namespace h2priv::tcp {

RenoCongestion::RenoCongestion(CongestionConfig config) noexcept
    : config_(config),
      cwnd_(static_cast<std::uint64_t>(config.mss) * config.initial_window_segments),
      ssthresh_(config.initial_ssthresh) {}

void RenoCongestion::on_ack(std::uint64_t acked_bytes) noexcept {
  if (in_recovery_) {
    // Window inflation is handled by the connection tracking in-flight data;
    // during recovery cwnd itself stays at ssthresh.
    return;
  }
  if (in_slow_start()) {
    cwnd_ += std::min<std::uint64_t>(acked_bytes, config_.mss);
  } else {
    // Congestion avoidance: +1 MSS per cwnd of acked data (byte counting).
    ca_acc_ += acked_bytes;
    if (ca_acc_ >= cwnd_) {
      ca_acc_ -= cwnd_;
      cwnd_ += config_.mss;
    }
  }
}

void RenoCongestion::on_dup_ack() noexcept {
  // Pre-threshold dup ACKs leave the window alone (limited transmit omitted).
}

void RenoCongestion::on_fast_retransmit() noexcept {
  ssthresh_ = std::max<std::uint64_t>(
      cwnd_ / 2,
      static_cast<std::uint64_t>(config_.mss) * config_.min_window_segments * 2);
  cwnd_ = ssthresh_;
  in_recovery_ = true;
  ca_acc_ = 0;
}

void RenoCongestion::on_recovery_exit() noexcept {
  in_recovery_ = false;
}

void RenoCongestion::on_timeout() noexcept {
  ssthresh_ = std::max<std::uint64_t>(
      cwnd_ / 2,
      static_cast<std::uint64_t>(config_.mss) * config_.min_window_segments * 2);
  cwnd_ = static_cast<std::uint64_t>(config_.mss) * config_.min_window_segments;
  in_recovery_ = false;
  ca_acc_ = 0;
}

}  // namespace h2priv::tcp
