#include "h2priv/tcp/reassembly.hpp"

#include <algorithm>

namespace h2priv::tcp {

util::Bytes Reassembly::offer(std::uint64_t seq, util::BytesView data) {
  std::uint64_t begin = seq;
  std::uint64_t seg_end = seq + data.size();

  // Trim anything already delivered.
  if (seg_end <= rcv_nxt_) return {};
  if (begin < rcv_nxt_) {
    data = data.subspan(static_cast<std::size_t>(rcv_nxt_ - begin));
    begin = rcv_nxt_;
  }

  // Trim against buffered segments (keep existing bytes, they are identical
  // on a faithful retransmission; on divergence first-arrival wins).
  // Left neighbour:
  if (auto it = segments_.upper_bound(begin); it != segments_.begin()) {
    auto prev = std::prev(it);
    const std::uint64_t prev_end = prev->first + prev->second.size();
    if (prev_end >= seg_end) return {};  // fully covered
    if (prev_end > begin) {
      data = data.subspan(static_cast<std::size_t>(prev_end - begin));
      begin = prev_end;
    }
  }
  // Right neighbours: insert the non-overlapping pieces between/after them.
  util::Bytes delivered;
  while (!data.empty()) {
    auto it = segments_.lower_bound(begin);
    std::uint64_t piece_end = seg_end;
    if (it != segments_.end()) piece_end = std::min(piece_end, it->first);
    if (piece_end > begin) {
      const std::size_t n = static_cast<std::size_t>(piece_end - begin);
      util::Bytes piece(data.begin(), data.begin() + static_cast<std::ptrdiff_t>(n));
      buffered_ += piece.size();
      segments_.emplace(begin, std::move(piece));
      data = data.subspan(n);
      begin = piece_end;
    }
    if (data.empty()) break;
    // Skip over the already-buffered neighbour.
    if (it == segments_.end()) break;
    const std::uint64_t covered_end = it->first + it->second.size();
    const std::uint64_t skip_to = std::min<std::uint64_t>(covered_end, seg_end);
    if (skip_to <= begin) break;
    data = data.subspan(static_cast<std::size_t>(skip_to - begin));
    begin = skip_to;
  }

  // Drain the contiguous prefix.
  while (!segments_.empty() && segments_.begin()->first == rcv_nxt_) {
    auto node = segments_.extract(segments_.begin());
    buffered_ -= node.mapped().size();
    rcv_nxt_ += node.mapped().size();
    delivered.insert(delivered.end(), node.mapped().begin(), node.mapped().end());
  }
  return delivered;
}

}  // namespace h2priv::tcp
