// Retransmission-timeout estimator: Jacobson/Karels smoothing with Karn's
// rule (callers must not feed samples from retransmitted segments) and
// exponential backoff on timeout (RFC 6298).
#pragma once

#include "h2priv/util/units.hpp"

namespace h2priv::tcp {

struct RtoConfig {
  util::Duration initial{util::seconds(1)};
  util::Duration min{util::milliseconds(200)};
  util::Duration max{util::seconds(60)};
};

class RtoEstimator {
 public:
  explicit RtoEstimator(RtoConfig config = {}) noexcept;

  /// Feeds one RTT measurement (never from a retransmitted segment — Karn).
  void sample(util::Duration rtt) noexcept;

  /// Doubles the backed-off timeout after a retransmission timer fires.
  void backoff() noexcept;

  /// Resets backoff once new data is acknowledged.
  void clear_backoff() noexcept { backoff_shift_ = 0; }

  /// Current timeout (smoothed estimate with backoff, clamped to [min,max]).
  [[nodiscard]] util::Duration rto() const noexcept;

  [[nodiscard]] util::Duration srtt() const noexcept { return srtt_; }
  [[nodiscard]] util::Duration rttvar() const noexcept { return rttvar_; }
  [[nodiscard]] bool has_sample() const noexcept { return has_sample_; }
  [[nodiscard]] int backoff_shift() const noexcept { return backoff_shift_; }

 private:
  RtoConfig config_;
  util::Duration srtt_{};
  util::Duration rttvar_{};
  util::Duration base_rto_;
  bool has_sample_ = false;
  int backoff_shift_ = 0;
};

}  // namespace h2priv::tcp
