// TCP segment wire format.
//
// The header mirrors real TCP's fields but uses 64-bit sequence numbers so a
// long simulation never has to reason about 32-bit wrap; everything an
// on-path adversary is allowed to read (ports, seq/ack, flags, window,
// payload length) is in the clear, exactly as with real TCP.
//
// Layout (big-endian, 28 bytes):
//   u16 src_port | u16 dst_port | u64 seq | u64 ack |
//   u8 flags | u8 reserved | u32 window | u16 payload_len
#pragma once

#include <cstdint>

#include "h2priv/util/bytes.hpp"

namespace h2priv::tcp {

inline constexpr std::size_t kHeaderBytes = 28;

/// Flag bits (combinable).
enum : std::uint8_t {
  kFlagSyn = 0x01,
  kFlagAck = 0x02,
  kFlagFin = 0x04,
  kFlagRst = 0x08,
};

struct Segment {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint64_t seq = 0;
  std::uint64_t ack = 0;
  std::uint8_t flags = 0;
  std::uint32_t window = 0;
  util::Bytes payload;

  [[nodiscard]] bool syn() const noexcept { return (flags & kFlagSyn) != 0; }
  [[nodiscard]] bool has_ack() const noexcept { return (flags & kFlagAck) != 0; }
  [[nodiscard]] bool fin() const noexcept { return (flags & kFlagFin) != 0; }
  [[nodiscard]] bool rst() const noexcept { return (flags & kFlagRst) != 0; }

  /// Sequence space the segment occupies (payload + SYN/FIN each count 1).
  [[nodiscard]] std::uint64_t seq_len() const noexcept {
    return payload.size() + (syn() ? 1u : 0u) + (fin() ? 1u : 0u);
  }

  [[nodiscard]] util::Bytes encode() const;
  /// Throws util::OutOfBounds / std::invalid_argument on malformed input.
  [[nodiscard]] static Segment decode(util::BytesView wire);
};

/// Parses only the header of an encoded segment — what an on-path observer
/// does. Returns the header fields and the payload view (still "encrypted"
/// at the TLS layer; the observer may parse TLS record headers from it).
///
/// Also doubles as the zero-copy *encode* input: tcp::Connection fills the
/// header fields and points `payload` at the send buffer, then
/// encode_segment() serialises straight into a pooled writer — the payload
/// is never copied into an owning Segment on the transmit path.
struct SegmentView {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint64_t seq = 0;
  std::uint64_t ack = 0;
  std::uint8_t flags = 0;
  std::uint32_t window = 0;
  util::BytesView payload;

  [[nodiscard]] bool syn() const noexcept { return (flags & kFlagSyn) != 0; }
  [[nodiscard]] bool has_ack() const noexcept { return (flags & kFlagAck) != 0; }
  [[nodiscard]] bool fin() const noexcept { return (flags & kFlagFin) != 0; }
  [[nodiscard]] bool rst() const noexcept { return (flags & kFlagRst) != 0; }

  /// Sequence space the segment occupies (payload + SYN/FIN each count 1).
  [[nodiscard]] std::uint64_t seq_len() const noexcept {
    return payload.size() + (syn() ? 1u : 0u) + (fin() ? 1u : 0u);
  }
};
[[nodiscard]] SegmentView peek(util::BytesView wire);

/// Serialises header + payload into `w` with the exact wire size reserved.
/// Byte-for-byte identical to Segment::encode() for the same fields.
void encode_segment(util::ByteWriter& w, const SegmentView& s);

}  // namespace h2priv::tcp
