// Receiver-side out-of-order reassembly buffer.
//
// Stores segments above rcv_nxt, trims overlaps, and drains the contiguous
// prefix once the gap fills. Duplicate retransmissions are absorbed here —
// which is exactly why the paper's "extra object copies" have to come from
// the application layer (see DESIGN.md §2).
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "h2priv/util/bytes.hpp"

namespace h2priv::tcp {

class Reassembly {
 public:
  explicit Reassembly(std::uint64_t initial_rcv_nxt = 0) noexcept
      : rcv_nxt_(initial_rcv_nxt) {}

  /// Zero-copy fast path for the common in-order case: with nothing
  /// buffered, a segment at or below rcv_nxt is consumed in place —
  /// rcv_nxt advances and the deliverable tail is returned as a view into
  /// `data` (empty for a pure duplicate). Returns nullopt when the segment
  /// needs the buffering slow path (gap ahead, or out-of-order segments
  /// pending); the caller must then use offer(). Delivers byte-for-byte
  /// what offer() would for the same input.
  [[nodiscard]] std::optional<util::BytesView> offer_in_order(
      std::uint64_t seq, util::BytesView data) noexcept {
    if (!segments_.empty() || seq > rcv_nxt_) return std::nullopt;
    const std::uint64_t seg_end = seq + data.size();
    if (seg_end <= rcv_nxt_) return util::BytesView{};  // already delivered
    const auto skip = static_cast<std::size_t>(rcv_nxt_ - seq);
    rcv_nxt_ = seg_end;
    return data.subspan(skip);
  }

  /// Offers a segment at absolute stream offset `seq`. Returns the bytes that
  /// became deliverable in order (possibly empty).
  [[nodiscard]] util::Bytes offer(std::uint64_t seq, util::BytesView data);

  [[nodiscard]] std::uint64_t rcv_nxt() const noexcept { return rcv_nxt_; }
  [[nodiscard]] std::size_t buffered_bytes() const noexcept { return buffered_; }
  [[nodiscard]] bool has_gaps() const noexcept { return !segments_.empty(); }

 private:
  std::uint64_t rcv_nxt_;
  std::size_t buffered_ = 0;
  std::map<std::uint64_t, util::Bytes> segments_;  // seq -> payload (disjoint)
};

}  // namespace h2priv::tcp
