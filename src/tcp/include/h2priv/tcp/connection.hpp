// TCP connection: handshake, ordered byte-stream delivery, Reno congestion
// control, fast retransmit / NewReno-style hole filling, RTO with backoff,
// and connection breakage after repeated retransmission failures (the
// paper's "broken connection" outcome when the adversary pushes too hard).
//
// Sequence-number convention: ISS = 0, the SYN occupies seq 0, so the data
// byte at application stream offset `o` has sequence number `o + 1`. This
// keeps ground-truth annotation (stream offset -> web object) trivial.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "h2priv/obs/metrics.hpp"
#include "h2priv/sim/simulator.hpp"
#include "h2priv/tcp/congestion.hpp"
#include "h2priv/tcp/reassembly.hpp"
#include "h2priv/tcp/rto.hpp"
#include "h2priv/tcp/segment.hpp"
#include "h2priv/tcp/send_buffer.hpp"
#include "h2priv/util/buffer_pool.hpp"
#include "h2priv/util/bytes.hpp"

namespace h2priv::tcp {

enum class State : std::uint8_t {
  kClosed,
  kListen,
  kSynSent,
  kSynRcvd,
  kEstablished,
  kFinWait1,
  kFinWait2,
  kCloseWait,
  kLastAck,
  kClosing,
  kTimeWait,
};

[[nodiscard]] const char* to_string(State s) noexcept;

enum class CloseReason : std::uint8_t {
  kNormal,        ///< orderly FIN handshake completed
  kReset,         ///< peer RST or local abort()
  kBroken,        ///< max retransmissions exceeded (path effectively dead)
};

struct TcpConfig {
  std::uint16_t local_port = 0;
  std::uint16_t remote_port = 0;
  std::uint32_t mss = 1452;
  std::uint32_t recv_window = 256 * 1024;
  /// Unsent backlog cap; send() beyond it throws (callers use send_capacity()).
  std::int64_t send_buffer_limit = 512 * 1024;
  /// on_writable fires when unsent backlog drops below this.
  std::int64_t writable_watermark = 8 * 1024;
  int dup_ack_threshold = 3;
  int max_retries = 10;
  /// RFC 2861 congestion window validation: collapse cwnd back to the
  /// initial window when the sender has been idle longer than one RTO.
  bool slow_start_restart = true;
  /// Nagle's algorithm (RFC 896): hold sub-MSS segments while data is
  /// outstanding. Off by default: HTTP/2 servers disable it (TCP_NODELAY).
  bool nagle = false;
  /// Delayed ACKs (RFC 1122): ACK every second segment or after the timer.
  /// Off by default to keep loss-detection dynamics crisp in experiments.
  bool delayed_ack = false;
  util::Duration delayed_ack_timeout{util::milliseconds(40)};
  RtoConfig rto{};
  std::uint32_t initial_window_segments = 10;
  util::Duration time_wait{util::seconds(1)};
};

struct TcpStats {
  std::uint64_t segments_sent = 0;
  std::uint64_t segments_received = 0;
  std::uint64_t data_segments_sent = 0;
  std::uint64_t payload_bytes_sent = 0;
  std::uint64_t retransmits_fast = 0;     ///< triggered by 3 dup ACKs
  std::uint64_t retransmits_timeout = 0;  ///< triggered by RTO
  std::uint64_t retransmits_hole = 0;     ///< NewReno partial-ack retransmits
  std::uint64_t dup_acks_received = 0;
  std::uint64_t dup_acks_sent = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t rto_backoffs = 0;

  [[nodiscard]] std::uint64_t total_retransmits() const noexcept {
    return retransmits_fast + retransmits_timeout + retransmits_hole;
  }
};

class Connection {
 public:
  /// Receives an encoded segment ready for the wire. The buffer is pooled
  /// and ref-counted; holders may keep it past the callback at no cost.
  using SegmentOut = std::function<void(util::SharedBytes)>;

  /// `out` may be null at construction (topology wiring cycles); it must be
  /// set via set_segment_out() before connect()/listen().
  Connection(sim::Simulator& sim, TcpConfig config, SegmentOut out);
  ~Connection();

  void set_segment_out(SegmentOut out) { out_ = std::move(out); }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Active open (client side): sends SYN.
  void connect();
  /// Passive open (server side): waits for SYN.
  void listen();

  /// Delivers a received wire-format segment into the connection.
  void on_wire(util::BytesView wire);

  /// Enqueues application bytes; returns the stream offset of the first byte.
  /// Throws std::length_error if it would exceed send_buffer_limit.
  std::uint64_t send(util::BytesView data);

  /// Bytes that can still be enqueued without exceeding the backlog cap.
  [[nodiscard]] std::int64_t send_capacity() const noexcept;

  /// Orderly close (FIN after all queued data).
  void close();
  /// Immediate RST.
  void abort();

  // --- observability -------------------------------------------------------
  [[nodiscard]] State state() const noexcept { return state_; }
  [[nodiscard]] bool established() const noexcept { return state_ ==
                                 State::kEstablished; }
  [[nodiscard]] const TcpStats& stats() const noexcept { return stats_; }
  /// Total application bytes ever enqueued (== next send()'s stream offset).
  [[nodiscard]] std::uint64_t bytes_enqueued() const noexcept { return send_buf_.end(); }
  [[nodiscard]] std::uint64_t bytes_delivered() const noexcept { return delivered_; }
  [[nodiscard]] const RenoCongestion& congestion() const noexcept { return cc_; }
  [[nodiscard]] const RtoEstimator& rto_estimator() const noexcept { return rto_; }
  [[nodiscard]] const TcpConfig& config() const noexcept { return config_; }

  // --- callbacks ------------------------------------------------------------
  std::function<void(util::BytesView)> on_data;
  std::function<void()> on_established;
  std::function<void(CloseReason)> on_closed;
  /// Unsent backlog dropped below writable_watermark.
  std::function<void()> on_writable;

 private:
  // seq <-> application stream offset (data starts at seq 1).
  [[nodiscard]] std::uint64_t offset_of(std::uint64_t seq) const noexcept {
    return seq - 1;
  }
  [[nodiscard]] std::uint64_t seq_of(std::uint64_t offset) const noexcept {
    return offset + 1;
  }
  [[nodiscard]] std::uint64_t fin_seq() const noexcept { return seq_of(send_buf_.end()); }

  void emit(SegmentView s);
  void send_ack(bool duplicate);
  void ack_received_data(bool out_of_order);
  void flush_delayed_ack();
  void pump();
  void retransmit_head(const char* why);
  void arm_retx_timer();
  void cancel_retx_timer();
  void on_retx_timeout();
  void handle_ack(const SegmentView& s);
  void handle_data(const SegmentView& s);
  void enter_established();
  void finish(CloseReason reason);
  [[nodiscard]] std::uint32_t advertised_window() const noexcept;
  [[nodiscard]] std::uint64_t effective_window() const noexcept;
  void maybe_fire_writable();

  sim::Simulator& sim_;
  TcpConfig config_;
  SegmentOut out_;
  State state_ = State::kClosed;
  TcpStats stats_;
  /// Thread-current metrics registry, captured at construction (connections
  /// live on one Monte-Carlo worker; see obs/metrics.hpp).
  obs::Registry* obs_ = &obs::current();

  // Send side.
  SendBuffer send_buf_;
  RenoCongestion cc_;
  RtoEstimator rto_;
  std::uint64_t snd_una_ = 0;  // oldest unacked seq
  std::uint64_t snd_nxt_ = 0;  // next seq to send
  std::uint64_t rwnd_peer_ = 65535;
  int dup_acks_ = 0;
  bool in_recovery_ = false;
  std::uint64_t recover_ = 0;           // highest seq sent when loss detected
  std::uint64_t recovery_inflation_ = 0;  // dup-ACK window inflation (bytes)
  int retries_ = 0;
  sim::EventId retx_timer_{};
  bool fin_queued_ = false;
  bool fin_sent_ = false;
  bool syn_acked_ = false;
  bool was_unwritable_ = false;
  util::TimePoint last_send_activity_{};

  // RTT timing (Karn's rule: one timed segment, invalidated on retransmit).
  bool timing_active_ = false;
  std::uint64_t timed_end_seq_ = 0;
  util::TimePoint timed_at_{};

  // Receive side.
  Reassembly reassembly_{1};  // first data byte from peer is seq 1
  bool peer_syn_seen_ = false;
  std::optional<std::uint64_t> peer_fin_seq_;
  bool peer_fin_consumed_ = false;
  std::uint64_t delivered_ = 0;
  int pending_acks_ = 0;           // delayed-ACK accounting
  sim::EventId delack_timer_{};
};

}  // namespace h2priv::tcp
