// Sender-side byte stream: application bytes keyed by absolute stream
// offset, with retransmission reads anywhere in the unacknowledged range.
//
// Storage is a single contiguous buffer with a dead-byte prefix: ack()
// just advances the prefix (O(1)) and append() reclaims it by sliding the
// live bytes down once the prefix is at least as large as the live region
// (amortized O(1) per appended byte — each byte is memmoved at most once
// per time it is acked). Keeping the live region contiguous is what lets
// read_view() hand out zero-copy slices at any offset, which in turn keeps
// segment boundaries — and therefore the wire bytes — identical to the old
// deque implementation.
#pragma once

#include <cstdint>

#include "h2priv/util/bytes.hpp"

namespace h2priv::tcp {

class SendBuffer {
 public:
  /// Appends application bytes; returns the stream offset of the first byte.
  std::uint64_t append(util::BytesView data);

  /// Zero-copy slice of up to `max_len` bytes starting at stream offset
  /// `offset`. The view is valid until the next append() (which may compact
  /// or reallocate the storage); ack() does not invalidate it.
  /// Throws std::out_of_range if offset is below the acked watermark or past
  /// the end of enqueued data.
  [[nodiscard]] util::BytesView read_view(std::uint64_t offset,
                                          std::size_t max_len) const;

  /// Copying variant of read_view() (kept for tests and non-hot callers).
  [[nodiscard]] util::Bytes read(std::uint64_t offset, std::size_t max_len) const;

  /// Releases bytes below `new_acked` (cumulative ACK advanced). O(1).
  void ack(std::uint64_t new_acked);

  [[nodiscard]] std::uint64_t acked() const noexcept { return base_; }
  [[nodiscard]] std::uint64_t end() const noexcept { return base_ + live(); }
  /// Bytes enqueued and not yet acknowledged.
  [[nodiscard]] std::uint64_t outstanding() const noexcept { return live(); }

 private:
  [[nodiscard]] std::size_t live() const noexcept { return buf_.size() - head_; }

  std::uint64_t base_ = 0;  // stream offset of buf_[head_]
  std::size_t head_ = 0;    // acked (dead) bytes still occupying the front
  util::Bytes buf_;         // dead prefix + unacked/unsent bytes
};

}  // namespace h2priv::tcp
