// Sender-side byte stream: application bytes keyed by absolute stream
// offset, with retransmission reads anywhere in the unacknowledged range.
#pragma once

#include <cstdint>
#include <deque>

#include "h2priv/util/bytes.hpp"

namespace h2priv::tcp {

class SendBuffer {
 public:
  /// Appends application bytes; returns the stream offset of the first byte.
  std::uint64_t append(util::BytesView data);

  /// Copies up to `max_len` bytes starting at stream offset `offset`.
  /// Throws std::out_of_range if offset is below the acked watermark or past
  /// the end of enqueued data.
  [[nodiscard]] util::Bytes read(std::uint64_t offset, std::size_t max_len) const;

  /// Releases bytes below `new_acked` (cumulative ACK advanced).
  void ack(std::uint64_t new_acked);

  [[nodiscard]] std::uint64_t acked() const noexcept { return base_; }
  [[nodiscard]] std::uint64_t end() const noexcept { return base_ + buf_.size(); }
  /// Bytes enqueued and not yet acknowledged.
  [[nodiscard]] std::uint64_t outstanding() const noexcept { return buf_.size(); }

 private:
  std::uint64_t base_ = 0;          // stream offset of buf_[0]
  std::deque<std::uint8_t> buf_;    // unacked + unsent bytes
};

}  // namespace h2priv::tcp
