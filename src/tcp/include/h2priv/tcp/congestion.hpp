// Reno congestion control: slow start, congestion avoidance, fast
// retransmit/fast recovery (NewReno-lite: one recovery episode per window).
//
// Kept separate from the connection FSM so the jitter/bandwidth experiments
// can unit-test window evolution and so the scheduler ablation can swap
// policies without touching the transport.
#pragma once

#include <cstdint>

namespace h2priv::tcp {

struct CongestionConfig {
  std::uint32_t mss = 1452;
  std::uint32_t initial_window_segments = 10;  // RFC 6928 IW10
  std::uint32_t min_window_segments = 1;
  std::uint64_t initial_ssthresh = UINT64_MAX;
};

class RenoCongestion {
 public:
  explicit RenoCongestion(CongestionConfig config = {}) noexcept;

  /// New cumulative ACK advanced by `acked` bytes.
  void on_ack(std::uint64_t acked_bytes) noexcept;

  /// A duplicate ACK arrived (after the fast-retransmit threshold the
  /// connection calls on_fast_retransmit instead).
  void on_dup_ack() noexcept;

  /// Third duplicate ACK: halve, enter fast recovery.
  void on_fast_retransmit() noexcept;

  /// Recovery completes when the ACK covers data sent after the loss.
  void on_recovery_exit() noexcept;

  /// Retransmission timer fired: collapse to one segment, ssthresh = half.
  void on_timeout() noexcept;

  [[nodiscard]] std::uint64_t cwnd() const noexcept { return cwnd_; }
  [[nodiscard]] std::uint64_t ssthresh() const noexcept { return ssthresh_; }
  [[nodiscard]] bool in_recovery() const noexcept { return in_recovery_; }
  [[nodiscard]] bool in_slow_start() const noexcept { return cwnd_ < ssthresh_; }

 private:
  CongestionConfig config_;
  std::uint64_t cwnd_;
  std::uint64_t ssthresh_;
  std::uint64_t ca_acc_ = 0;  // congestion-avoidance byte accumulator
  bool in_recovery_ = false;
};

}  // namespace h2priv::tcp
