#include "h2priv/tcp/segment.hpp"

#include <stdexcept>

#include "h2priv/util/narrow.hpp"

namespace h2priv::tcp {

void encode_segment(util::ByteWriter& w, const SegmentView& s) {
  w.reserve(kHeaderBytes + s.payload.size());
  w.u16(s.src_port);
  w.u16(s.dst_port);
  w.u64(s.seq);
  w.u64(s.ack);
  w.u8(s.flags);
  w.u8(0);
  w.u32(s.window);
  w.u16(util::narrow<std::uint16_t>(s.payload.size()));
  w.bytes(s.payload);
}

util::Bytes Segment::encode() const {
  util::ByteWriter w(kHeaderBytes + payload.size());
  encode_segment(w, SegmentView{.src_port = src_port,
                                .dst_port = dst_port,
                                .seq = seq,
                                .ack = ack,
                                .flags = flags,
                                .window = window,
                                .payload = payload});
  return w.take();
}

Segment Segment::decode(util::BytesView wire) {
  util::ByteReader r(wire);
  Segment s;
  s.src_port = r.u16();
  s.dst_port = r.u16();
  s.seq = r.u64();
  s.ack = r.u64();
  s.flags = r.u8();
  r.skip(1);
  s.window = r.u32();
  const std::uint16_t len = r.u16();
  if (r.remaining() != len) {
    throw std::invalid_argument("Segment::decode: payload length mismatch");
  }
  const auto body = r.bytes(len);
  s.payload.assign(body.begin(), body.end());
  return s;
}

SegmentView peek(util::BytesView wire) {
  util::ByteReader r(wire);
  SegmentView v;
  v.src_port = r.u16();
  v.dst_port = r.u16();
  v.seq = r.u64();
  v.ack = r.u64();
  v.flags = r.u8();
  r.skip(1);
  v.window = r.u32();
  const std::uint16_t len = r.u16();
  if (r.remaining() != len) {
    throw std::invalid_argument("tcp::peek: payload length mismatch");
  }
  v.payload = r.bytes(len);
  return v;
}

}  // namespace h2priv::tcp
