#include "h2priv/tcp/connection.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "h2priv/util/narrow.hpp"

namespace h2priv::tcp {

const char* to_string(State s) noexcept {
  switch (s) {
    case State::kClosed: return "CLOSED";
    case State::kListen: return "LISTEN";
    case State::kSynSent: return "SYN_SENT";
    case State::kSynRcvd: return "SYN_RCVD";
    case State::kEstablished: return "ESTABLISHED";
    case State::kFinWait1: return "FIN_WAIT_1";
    case State::kFinWait2: return "FIN_WAIT_2";
    case State::kCloseWait: return "CLOSE_WAIT";
    case State::kLastAck: return "LAST_ACK";
    case State::kClosing: return "CLOSING";
    case State::kTimeWait: return "TIME_WAIT";
  }
  return "?";
}

Connection::Connection(sim::Simulator& sim, TcpConfig config, SegmentOut out)
    : sim_(sim),
      config_(config),
      out_(std::move(out)),
      cc_(CongestionConfig{.mss = config.mss,
                           .initial_window_segments = config.initial_window_segments,
                           .min_window_segments = 1,
                           .initial_ssthresh = UINT64_MAX}),
      rto_(config.rto) {
  if (config_.mss == 0) throw std::invalid_argument("tcp::Connection: zero MSS");
}

Connection::~Connection() {
  cancel_retx_timer();
  if (delack_timer_.valid()) sim_.cancel(delack_timer_);
}

void Connection::connect() {
  if (state_ != State::kClosed) throw std::logic_error("connect(): not CLOSED");
  if (!out_) throw std::logic_error("connect(): segment sink not wired");
  state_ = State::kSynSent;
  SegmentView syn;
  syn.flags = kFlagSyn;
  syn.seq = 0;
  snd_nxt_ = 1;
  emit(syn);
  arm_retx_timer();
}

void Connection::listen() {
  if (state_ != State::kClosed) throw std::logic_error("listen(): not CLOSED");
  if (!out_) throw std::logic_error("listen(): segment sink not wired");
  state_ = State::kListen;
}

std::uint64_t Connection::send(util::BytesView data) {
  if (state_ == State::kClosed || state_ == State::kTimeWait || fin_queued_) {
    throw std::logic_error("tcp::send: connection not writable");
  }
  if (static_cast<std::int64_t>(data.size()) > send_capacity()) {
    throw std::length_error("tcp::send: exceeds send buffer limit");
  }
  const std::uint64_t offset = send_buf_.append(data);
  obs_->sample(obs::Hist::kTcpSendBufOccupancy, send_buf_.outstanding());
  obs_->gauge_max(obs::Gauge::kTcpSendBufferBytes, send_buf_.outstanding());
  const std::uint64_t sent_offset =
      snd_nxt_ > 0 ? std::min(offset_of(snd_nxt_), send_buf_.end()) : 0;
  if (static_cast<std::int64_t>(send_buf_.end() - sent_offset) >=
      config_.writable_watermark) {
    was_unwritable_ = true;
  }
  pump();
  return offset;
}

std::int64_t Connection::send_capacity() const noexcept {
  const std::uint64_t sent_offset =
      snd_nxt_ > 0 ? std::min(offset_of(snd_nxt_), send_buf_.end()) : 0;
  const auto unsent = static_cast<std::int64_t>(send_buf_.end() - sent_offset);
  return std::max<std::int64_t>(0, config_.send_buffer_limit - unsent);
}

void Connection::close() {
  if (fin_queued_ || state_ == State::kClosed) return;
  fin_queued_ = true;
  if (state_ == State::kEstablished || state_ == State::kSynRcvd || state_ ==
      State::kSynSent) {
    state_ = State::kFinWait1;
  } else if (state_ == State::kCloseWait) {
    state_ = State::kLastAck;
  }
  pump();
}

void Connection::abort() {
  if (state_ == State::kClosed) return;
  SegmentView rst;
  rst.flags = kFlagRst | kFlagAck;
  rst.seq = snd_nxt_;
  rst.ack = reassembly_.rcv_nxt() + (peer_fin_consumed_ ? 1 : 0);
  emit(rst);
  finish(CloseReason::kReset);
}

std::uint32_t Connection::advertised_window() const noexcept {
  const auto buffered = static_cast<std::uint32_t>(
      std::min<std::size_t>(reassembly_.buffered_bytes(), config_.recv_window));
  return config_.recv_window - buffered;
}

std::uint64_t Connection::effective_window() const noexcept {
  std::uint64_t wnd = cc_.cwnd();
  if (in_recovery_) wnd += recovery_inflation_;
  return std::min<std::uint64_t>(wnd, rwnd_peer_);
}

void Connection::emit(SegmentView s) {
  s.src_port = config_.local_port;
  s.dst_port = config_.remote_port;
  s.window = advertised_window();
  ++stats_.segments_sent;
  obs_->add(obs::Counter::kTcpSegmentsSent);
  if (!s.payload.empty()) {
    ++stats_.data_segments_sent;
    stats_.payload_bytes_sent += s.payload.size();
  }
  // One pooled chunk per segment: header + payload serialise straight into
  // it, and the chunk rides the Packet all the way to the receiving
  // endpoint before returning to this thread's pool.
  util::ByteWriter w(util::default_pool(), kHeaderBytes + s.payload.size());
  encode_segment(w, s);
  out_(w.take_shared());
}

void Connection::send_ack(bool duplicate) {
  SegmentView ack;
  ack.flags = kFlagAck;
  ack.seq = snd_nxt_;
  ack.ack = reassembly_.rcv_nxt() + (peer_fin_consumed_ ? 1 : 0);
  if (duplicate) ++stats_.dup_acks_sent;
  ++stats_.acks_sent;
  pending_acks_ = 0;
  if (delack_timer_.valid()) {
    sim_.cancel(delack_timer_);
    delack_timer_ = {};
  }
  emit(ack);
}

void Connection::flush_delayed_ack() {
  delack_timer_ = {};
  if (pending_acks_ > 0) send_ack(false);
}

void Connection::ack_received_data(bool out_of_order) {
  if (!config_.delayed_ack || out_of_order || peer_fin_seq_) {
    // Loss signals (dup ACKs) and FIN handling must not be delayed.
    send_ack(out_of_order);
    return;
  }
  if (++pending_acks_ >= 2) {
    send_ack(false);
    return;
  }
  if (!delack_timer_.valid()) {
    delack_timer_ = sim_.schedule(config_.delayed_ack_timeout,
                                  [this] { flush_delayed_ack(); });
  }
}

void Connection::pump() {
  const bool can_send_data =
      state_ == State::kEstablished || state_ == State::kCloseWait ||
      state_ == State::kFinWait1 || state_ == State::kLastAck || state_ ==
          State::kClosing;
  if (!can_send_data || snd_nxt_ == 0) return;

  // RFC 2861: an idle sender must not dump a stale, possibly huge window
  // onto the network — restart from the initial window.
  if (config_.slow_start_restart && snd_una_ == snd_nxt_ &&
      last_send_activity_.ns != 0 && sim_.now() - last_send_activity_ > rto_.rto() &&
      offset_of(snd_nxt_) < send_buf_.end()) {
    cc_ = RenoCongestion(CongestionConfig{.mss = config_.mss,
                                          .initial_window_segments =
                                              config_.initial_window_segments,
                                          .min_window_segments = 1,
                                          .initial_ssthresh = cc_.ssthresh()});
  }

  bool sent_any = false;
  for (;;) {
    const std::uint64_t inflight = snd_nxt_ - snd_una_;
    const std::uint64_t wnd = effective_window();
    if (inflight >= wnd) break;
    const std::uint64_t next_offset = offset_of(snd_nxt_);
    if (next_offset < send_buf_.end()) {
      const std::uint64_t room = wnd - inflight;
      const std::size_t n = static_cast<std::size_t>(std::min<std::uint64_t>(
          {config_.mss, room, send_buf_.end() - next_offset}));
      if (n == 0) break;
      // Nagle: while data is outstanding, hold a sub-MSS tail until either
      // the ACK returns or more data coalesces it into a full segment.
      if (config_.nagle && n < config_.mss && inflight > 0 &&
          send_buf_.end() - next_offset == n && !fin_queued_) {
        break;
      }
      SegmentView seg;
      seg.flags = kFlagAck;
      seg.seq = snd_nxt_;
      seg.ack = reassembly_.rcv_nxt() + (peer_fin_consumed_ ? 1 : 0);
      seg.payload = send_buf_.read_view(next_offset, n);
      if (!timing_active_) {
        timing_active_ = true;
        timed_end_seq_ = snd_nxt_ + n;
        timed_at_ = sim_.now();
      }
      snd_nxt_ += n;
      emit(seg);
      last_send_activity_ = sim_.now();
      sent_any = true;
      continue;
    }
    // All data transmitted; maybe the FIN goes out now.
    if (fin_queued_ && !fin_sent_) {
      SegmentView fin;
      fin.flags = kFlagFin | kFlagAck;
      fin.seq = snd_nxt_;
      fin.ack = reassembly_.rcv_nxt() + (peer_fin_consumed_ ? 1 : 0);
      snd_nxt_ += 1;
      fin_sent_ = true;
      emit(fin);
      sent_any = true;
    }
    break;
  }
  if (sent_any && !retx_timer_.valid()) arm_retx_timer();
  maybe_fire_writable();
}

void Connection::maybe_fire_writable() {
  if (!was_unwritable_) return;
  const std::uint64_t sent_offset =
      snd_nxt_ > 0 ? std::min(offset_of(snd_nxt_), send_buf_.end()) : 0;
  const auto unsent = static_cast<std::int64_t>(send_buf_.end() - sent_offset);
  if (unsent < config_.writable_watermark) {
    was_unwritable_ = false;
    if (on_writable) on_writable();
  }
}

void Connection::retransmit_head(const char* /*why*/) {
  timing_active_ = false;  // Karn: never time a retransmitted range
  if (state_ == State::kSynSent) {
    SegmentView syn;
    syn.flags = kFlagSyn;
    syn.seq = 0;
    emit(syn);
    return;
  }
  if (state_ == State::kSynRcvd) {
    SegmentView synack;
    synack.flags = kFlagSyn | kFlagAck;
    synack.seq = 0;
    synack.ack = 1;
    emit(synack);
    return;
  }
  const std::uint64_t off = offset_of(std::max<std::uint64_t>(snd_una_, 1));
  if (off < send_buf_.end()) {
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(config_.mss, send_buf_.end() - off));
    SegmentView seg;
    seg.flags = kFlagAck;
    seg.seq = seq_of(off);
    seg.ack = reassembly_.rcv_nxt() + (peer_fin_consumed_ ? 1 : 0);
    seg.payload = send_buf_.read_view(off, n);
    emit(seg);
  } else if (fin_sent_ && snd_una_ <= fin_seq()) {
    SegmentView fin;
    fin.flags = kFlagFin | kFlagAck;
    fin.seq = fin_seq();
    fin.ack = reassembly_.rcv_nxt() + (peer_fin_consumed_ ? 1 : 0);
    emit(fin);
  }
}

void Connection::arm_retx_timer() {
  cancel_retx_timer();
  retx_timer_ = sim_.schedule(rto_.rto(), [this] {
    retx_timer_ = {};
    on_retx_timeout();
  });
}

void Connection::cancel_retx_timer() {
  if (retx_timer_.valid()) {
    sim_.cancel(retx_timer_);
    retx_timer_ = {};
  }
}

void Connection::on_retx_timeout() {
  if (state_ == State::kClosed) return;
  if (state_ == State::kTimeWait) {
    finish(CloseReason::kNormal);
    return;
  }
  if (snd_una_ == snd_nxt_ && state_ != State::kSynSent && state_ != State::kSynRcvd) {
    return;  // everything acked while the timer was in flight
  }
  ++retries_;
  if (retries_ > config_.max_retries) {
    // The path is effectively dead: this is the paper's "broken connection".
    SegmentView rst;
    rst.flags = kFlagRst;
    rst.seq = snd_nxt_;
    emit(rst);
    finish(CloseReason::kBroken);
    return;
  }
  ++stats_.retransmits_timeout;
  ++stats_.rto_backoffs;
  obs_->add(obs::Counter::kTcpRetransmitsTimeout);
  obs_->add(obs::Counter::kTcpRtoFired);
  obs_->add(obs::Counter::kTcpRtoBackoffs);
  obs_->trace().push(sim_.now().ns, obs::TraceLayer::kTcp, obs::TraceEvent::kRtoFired,
                     static_cast<std::uint64_t>(retries_),
                     static_cast<std::uint64_t>(rto_.rto().ns));
  rto_.backoff();
  cc_.on_timeout();
  obs_->sample(obs::Hist::kTcpCwndBytes, cc_.cwnd());
  in_recovery_ = false;
  dup_acks_ = 0;
  recovery_inflation_ = 0;
  recover_ = snd_nxt_;
  retransmit_head("rto");
  arm_retx_timer();
}

void Connection::enter_established() {
  state_ = State::kEstablished;
  cancel_retx_timer();
  retries_ = 0;
  if (on_established) on_established();
  pump();
}

void Connection::finish(CloseReason reason) {
  if (state_ == State::kClosed) return;
  state_ = State::kClosed;
  cancel_retx_timer();
  if (on_closed) on_closed(reason);
}

void Connection::on_wire(util::BytesView wire) {
  if (state_ == State::kClosed) return;
  const SegmentView s = peek(wire);
  ++stats_.segments_received;
  obs_->add(obs::Counter::kTcpSegmentsReceived);

  if (s.rst()) {
    if (state_ != State::kListen) finish(CloseReason::kReset);
    return;
  }

  switch (state_) {
    case State::kListen:
      if (s.syn() && !s.has_ack()) {
        peer_syn_seen_ = true;
        state_ = State::kSynRcvd;
        SegmentView synack;
        synack.flags = kFlagSyn | kFlagAck;
        synack.seq = 0;
        synack.ack = 1;
        snd_nxt_ = 1;
        emit(synack);
        arm_retx_timer();
      }
      return;

    case State::kSynSent:
      if (s.syn() && s.has_ack() && s.ack == 1) {
        peer_syn_seen_ = true;
        snd_una_ = 1;
        syn_acked_ = true;
        rwnd_peer_ = s.window;
        enter_established();
        send_ack(false);
      }
      return;

    case State::kSynRcvd:
      if (s.has_ack() && s.ack >= 1) {
        snd_una_ = std::max<std::uint64_t>(snd_una_, 1);
        syn_acked_ = true;
        enter_established();
        // Fall through to normal processing of any piggybacked data.
        handle_ack(s);
        handle_data(s);
      }
      return;

    default:
      if (s.syn()) {
        // A retransmitted SYN-ACK means our final handshake ACK was lost;
        // re-ACK or the peer stays stuck in SYN_RCVD.
        send_ack(false);
        return;
      }
      handle_ack(s);
      handle_data(s);
      return;
  }
}

void Connection::handle_ack(const SegmentView& s) {
  if (!s.has_ack()) return;
  rwnd_peer_ = s.window;

  if (s.ack > snd_una_ && s.ack <= snd_nxt_) {
    const std::uint64_t acked = s.ack - snd_una_;
    snd_una_ = s.ack;
    if (snd_una_ >= 1) syn_acked_ = true;
    send_buf_.ack(std::min(offset_of(snd_una_), send_buf_.end()));
    retries_ = 0;
    rto_.clear_backoff();

    if (timing_active_ && s.ack >= timed_end_seq_) {
      rto_.sample(sim_.now() - timed_at_);
      timing_active_ = false;
    }

    if (in_recovery_) {
      if (s.ack >= recover_) {
        in_recovery_ = false;
        dup_acks_ = 0;
        recovery_inflation_ = 0;
        cc_.on_recovery_exit();
      } else {
        // NewReno partial ACK: the next hole is lost too — retransmit it.
        ++stats_.retransmits_hole;
        obs_->add(obs::Counter::kTcpRetransmitsHole);
        obs_->trace().push(sim_.now().ns, obs::TraceLayer::kTcp,
                           obs::TraceEvent::kRetransmit, snd_una_, 2);
        retransmit_head("partial-ack");
      }
    } else {
      dup_acks_ = 0;
      cc_.on_ack(acked);
      obs_->sample(obs::Hist::kTcpCwndBytes, cc_.cwnd());
      obs_->gauge_max(obs::Gauge::kTcpCwndBytes, cc_.cwnd());
    }

    // FIN acked?
    if (fin_sent_ && snd_una_ > fin_seq()) {
      if (state_ == State::kFinWait1) {
        state_ = peer_fin_consumed_ ? State::kTimeWait : State::kFinWait2;
      } else if (state_ == State::kClosing) {
        state_ = State::kTimeWait;
      } else if (state_ == State::kLastAck) {
        finish(CloseReason::kNormal);
        return;
      }
      if (state_ == State::kTimeWait) {
        cancel_retx_timer();
        retx_timer_ = sim_.schedule(config_.time_wait, [this] {
          retx_timer_ = {};
          finish(CloseReason::kNormal);
        });
      }
    }

    if (snd_una_ == snd_nxt_) {
      if (state_ != State::kTimeWait) cancel_retx_timer();
    } else {
      arm_retx_timer();
    }
    pump();
    maybe_fire_writable();
    return;
  }

  // Duplicate ACK: does not advance, carries no data, with data outstanding.
  if (s.ack == snd_una_ && snd_nxt_ > snd_una_ && s.payload.empty() && !s.syn() &&
      !s.fin()) {
    ++stats_.dup_acks_received;
    if (in_recovery_) {
      recovery_inflation_ += config_.mss;
      pump();
    } else {
      ++dup_acks_;
      cc_.on_dup_ack();
      if (dup_acks_ == config_.dup_ack_threshold) {
        in_recovery_ = true;
        recover_ = snd_nxt_;
        recovery_inflation_ =
            static_cast<std::uint64_t>(config_.dup_ack_threshold) * config_.mss;
        cc_.on_fast_retransmit();
        obs_->sample(obs::Hist::kTcpCwndBytes, cc_.cwnd());
        ++stats_.retransmits_fast;
        obs_->add(obs::Counter::kTcpRetransmitsFast);
        obs_->trace().push(sim_.now().ns, obs::TraceLayer::kTcp,
                           obs::TraceEvent::kRetransmit, snd_una_, 0);
        retransmit_head("fast-retransmit");
        arm_retx_timer();
      }
    }
  }
}

void Connection::handle_data(const SegmentView& s) {
  if (!peer_syn_seen_ && state_ != State::kEstablished) return;

  bool consumed_something = false;
  bool out_of_order = false;

  if (!s.payload.empty()) {
    out_of_order = s.seq > reassembly_.rcv_nxt();
    consumed_something = true;
    // In-order segments (the steady state) are delivered as a view into the
    // packet's pooled buffer — no copy, no reassembly-map churn.
    if (const auto fast = reassembly_.offer_in_order(s.seq, s.payload)) {
      if (!fast->empty()) {
        delivered_ += fast->size();
        if (on_data) on_data(*fast);
      }
    } else {
      const util::Bytes delivered = reassembly_.offer(s.seq, s.payload);
      if (!delivered.empty()) {
        delivered_ += delivered.size();
        if (on_data) on_data(delivered);
      }
    }
  }

  if (s.fin()) {
    peer_fin_seq_ = s.seq + s.payload.size();
    consumed_something = true;
  }
  if (peer_fin_seq_ && !peer_fin_consumed_ && reassembly_.rcv_nxt() == *peer_fin_seq_) {
    peer_fin_consumed_ = true;
    switch (state_) {
      case State::kEstablished: state_ = State::kCloseWait; break;
      case State::kFinWait1: state_ = State::kClosing; break;
      case State::kFinWait2:
        state_ = State::kTimeWait;
        cancel_retx_timer();
        retx_timer_ = sim_.schedule(config_.time_wait, [this] {
          retx_timer_ = {};
          finish(CloseReason::kNormal);
        });
        break;
      default: break;
    }
  }

  if (consumed_something) {
    // ACK everything that consumes sequence space; an ACK that does not
    // advance rcv_nxt is the duplicate ACK the sender's loss detector needs.
    ack_received_data(out_of_order);
  }
}

}  // namespace h2priv::tcp
